//! Scoped-thread parallelism helpers shared by every LAN crate.
//!
//! The LAN cost model is dominated by expensive distance (GED) calls and
//! GNN forward passes, which makes the workload embarrassingly parallel
//! across shards, queries, and construction candidates. These helpers put
//! that parallelism behind two order-preserving primitives built on
//! `std::thread::scope` — no external dependencies, no global pool, no
//! `unsafe`.
//!
//! * [`par_map`] — map a function over a slice, preserving input order;
//! * [`par_map_indices`] — the `0..n` index variant;
//! * [`par_chunks`] — hand each worker a contiguous sub-slice;
//! * [`par_map_dyn`] / [`par_map_indices_dyn`] / [`par_chunks_dyn`] — the
//!   work-stealing variants: workers claim [`Grain`]-sized item ranges
//!   from a shared atomic cursor, so skewed per-item cost (tau-aborting
//!   A\* next to instant lower-bound prunes) cannot strand the batch
//!   behind one unlucky static chunk. `LAN_SCHED` pins the executor
//!   (`seq` / `static` / `ws`) for equivalence tests and benchmarks.
//!
//! Thread count comes from [`num_threads`]: the `LAN_THREADS` environment
//! variable when set (any positive integer; `1` forces every helper into
//! its serial fallback), otherwise [`std::thread::available_parallelism`].
//! The variable is re-read on every call so tests and benchmarks can flip
//! it at runtime.
//!
//! Determinism contract: all helpers return results in input order, so a
//! pure `f` yields output identical to the serial `items.iter().map(f)` —
//! the property the parallel == sequential equivalence tests in `lan-core`
//! rely on.

/// Serialized, scoped environment-variable mutation for tests.
///
/// Environment variables are process-wide: a test calling
/// `set_var("LAN_THREADS", ..)` under the parallel test harness races
/// every concurrent [`num_threads`] reader. [`testenv::with_env`] takes a
/// global lock for the whole closure, applies the overrides, and restores
/// the previous values afterwards — even when the closure panics. Every
/// workspace test that mutates a `LAN_*` variable (`LAN_THREADS`, the
/// budget variables, `LAN_FAULTS`) must go through it.
pub mod testenv {
    use std::sync::{Mutex, MutexGuard};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the env lock without mutating anything — for tests that read
    /// env-sensitive state and must not interleave with a mutator.
    pub fn lock() -> MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Restores one variable to its pre-override value on drop, so the
    /// environment is clean even when the closure panics.
    struct Restore {
        key: String,
        prev: Option<String>,
    }

    impl Drop for Restore {
        fn drop(&mut self) {
            match &self.prev {
                Some(v) => std::env::set_var(&self.key, v),
                None => std::env::remove_var(&self.key),
            }
        }
    }

    /// Runs `f` with the given overrides applied (`None` unsets the
    /// variable) under the global env lock; previous values are restored
    /// afterwards, panic or not.
    pub fn with_env<R>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
        let _l = lock();
        let _restore: Vec<Restore> = vars
            .iter()
            .map(|&(k, v)| {
                let prev = std::env::var(k).ok();
                match v {
                    Some(val) => std::env::set_var(k, val),
                    None => std::env::remove_var(k),
                }
                Restore {
                    key: k.to_string(),
                    prev,
                }
            })
            .collect();
        f()
    }
}

/// Strict, loud parsing of `LAN_*` environment knobs.
///
/// The historical failure mode of env-tuned systems is the silent typo:
/// `LAN_THREADS=O8` or `LAN_NDC_BUDGET=-5` would quietly fall back to a
/// default and change benchmark numbers without a trace. Every knob in the
/// workspace now parses through this module: a malformed value yields a
/// typed [`env::EnvError`] on the `try_*` paths, and the total
/// (infallible) paths print the offending value to stderr **once per key
/// per process** before falling back to the documented default.
pub mod env {
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// A malformed environment variable: which key, the raw offending
    /// value, and why it was rejected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct EnvError {
        pub key: String,
        pub value: String,
        pub reason: String,
    }

    impl std::fmt::Display for EnvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "ignoring {}={:?}: {} (using default)",
                self.key, self.value, self.reason
            )
        }
    }

    impl std::error::Error for EnvError {}

    static WARNED: Mutex<Option<HashSet<String>>> = Mutex::new(None);

    /// Prints `err` to stderr the first time its key is seen; later calls
    /// for the same key are silent (one warning per knob per process, so a
    /// hot loop re-reading the env can't spam).
    pub fn warn_once(err: &EnvError) {
        let mut g = WARNED.lock().unwrap_or_else(|e| e.into_inner());
        let set = g.get_or_insert_with(HashSet::new);
        if set.insert(err.key.clone()) {
            eprintln!("lan: {err}");
        }
    }

    /// Test hook: forgets which keys have warned, so reject-set tests can
    /// observe the warning behavior deterministically.
    pub fn reset_warnings() {
        let mut g = WARNED.lock().unwrap_or_else(|e| e.into_inner());
        *g = None;
    }

    /// Reads `key` and parses it with `parse`. Unset → `Ok(None)`; set
    /// and valid → `Ok(Some(v))`; set and malformed → `Err(EnvError)`.
    pub fn parse_var<T>(
        key: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<Option<T>, EnvError> {
        match std::env::var(key) {
            Err(_) => Ok(None),
            Ok(raw) => parse(raw.trim()).map(Some).map_err(|reason| EnvError {
                key: key.to_string(),
                value: raw,
                reason,
            }),
        }
    }

    /// Total variant of [`parse_var`]: malformed values warn once to
    /// stderr and report as unset, so the caller's documented default
    /// applies.
    pub fn parse_var_or_warn<T>(
        key: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Option<T> {
        match parse_var(key, parse) {
            Ok(v) => v,
            Err(e) => {
                warn_once(&e);
                None
            }
        }
    }

    /// Parser for a positive (non-zero) integer knob.
    pub fn positive_usize(s: &str) -> Result<usize, String> {
        let n: usize = s
            .parse()
            .map_err(|_| format!("expected a positive integer, got {s:?}"))?;
        if n == 0 {
            return Err("must be >= 1".into());
        }
        Ok(n)
    }

    /// Parser for a non-negative integer knob (zero allowed).
    pub fn any_usize(s: &str) -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("expected a non-negative integer, got {s:?}"))
    }
}

/// Worker count used by the helpers, as a `Result`: the `LAN_THREADS`
/// override when set and valid, the host's available parallelism when
/// unset, and a typed [`env::EnvError`] when set but malformed
/// (non-numeric, negative, or zero — a zero-thread pool cannot make
/// progress, so it is rejected rather than clamped).
pub fn try_num_threads() -> Result<usize, env::EnvError> {
    match env::parse_var("LAN_THREADS", env::positive_usize)? {
        Some(n) => Ok(n),
        None => Ok(std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)),
    }
}

/// Worker count used by the helpers: `LAN_THREADS` env override when set,
/// else the host's available parallelism. Re-read on every call. A
/// malformed override (including `0`) warns once on stderr and falls back
/// to the host parallelism — it no longer silently clamps.
pub fn num_threads() -> usize {
    match try_num_threads() {
        Ok(n) => n,
        Err(e) => {
            env::warn_once(&e);
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        }
    }
}

/// Execution scheduler used by the dynamic helpers ([`par_map_dyn`],
/// [`par_chunks_dyn`]), selected by the `LAN_SCHED` environment variable.
///
/// GED-heavy fan-outs are *skewed*: one item can cost a tau-aborting A\*
/// solve while its neighbors are settled by instant lower-bound prunes.
/// Static one-contiguous-chunk-per-worker scheduling then leaves workers
/// idle behind whichever chunk drew the hard items; the work-stealing
/// executor instead hands out small grains from a shared atomic cursor, so
/// a fast worker immediately claims the next chunk. All three modes are
/// bit-identical in their outputs (property-tested) — the knob exists so
/// benchmarks and tests can pin a mode and compare wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sched {
    /// Serial loop on the calling thread (`LAN_SCHED=seq`).
    Sequential,
    /// One contiguous chunk per worker (`LAN_SCHED=static`) — the PR-1
    /// scheduling, kept as the regression reference.
    Static,
    /// Chunked atomic-cursor work stealing (`LAN_SCHED=ws`, the default).
    WorkStealing,
}

impl Sched {
    /// Stable name for bench artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Sched::Sequential => "sequential",
            Sched::Static => "static",
            Sched::WorkStealing => "work_stealing",
        }
    }
}

/// The scheduler as a `Result`: `LAN_SCHED` when set and valid (`seq` /
/// `sequential`, `static`, `ws` / `steal` / `dyn`), work stealing when
/// unset, and a typed [`env::EnvError`] when set but malformed.
pub fn try_sched() -> Result<Sched, env::EnvError> {
    let parsed = env::parse_var("LAN_SCHED", |s| match s.to_ascii_lowercase().as_str() {
        "seq" | "sequential" => Ok(Sched::Sequential),
        "static" => Ok(Sched::Static),
        "ws" | "steal" | "work-stealing" | "dyn" => Ok(Sched::WorkStealing),
        _ => Err(format!("expected seq|static|ws, got {s:?}")),
    })?;
    Ok(parsed.unwrap_or(Sched::WorkStealing))
}

/// Scheduler used by the dynamic helpers: `LAN_SCHED` override when set
/// (re-read on every call, like [`num_threads`]), else work stealing. A
/// malformed value warns once on stderr and falls back to the default.
pub fn sched() -> Sched {
    match try_sched() {
        Ok(s) => s,
        Err(e) => {
            env::warn_once(&e);
            Sched::WorkStealing
        }
    }
}

/// Grain-size policy of the work-stealing executor: how many consecutive
/// items one cursor claim hands a worker.
///
/// Small grains maximize balance but pay one atomic RMW plus one mutex
/// push per grain; large grains amortize that overhead but re-introduce
/// the idle-tail problem on skewed work. The policy:
///
/// * [`Grain::Fine`] — grain 1, for skewed expensive items (GED/A\* solves,
///   whole queries, shard builds) where per-item cost dwarfs scheduling
///   overhead and imbalance is the enemy;
/// * [`Grain::Coarse`] — ~4 chunks per worker, for cheap uniform items
///   (signature lower-bound scans, embedding batches) where scheduling
///   overhead would dominate single items;
/// * [`Grain::Auto`] — ~8 chunks per worker (capped at 256 items), a
///   middle ground for mildly skewed work;
/// * [`Grain::Fixed(n)`] — explicit override for benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grain {
    Fine,
    Auto,
    Coarse,
    Fixed(usize),
}

impl Grain {
    /// Concrete grain size for `len` items on `threads` workers.
    pub fn size(self, len: usize, threads: usize) -> usize {
        let t = threads.max(1);
        match self {
            Grain::Fine => 1,
            Grain::Auto => len.div_ceil(t * 8).clamp(1, 256),
            Grain::Coarse => len.div_ceil(t * 4).clamp(1, 4096),
            Grain::Fixed(n) => n.max(1),
        }
    }
}

/// Shared work-stealing driver: workers claim `[start, start+grain)` item
/// ranges from an atomic cursor until it passes `len`, run `run_chunk`
/// on each claimed range, and the per-range outputs are re-assembled in
/// input order. A panic in `run_chunk` propagates after the scope joins
/// (sibling workers drain the remaining ranges first).
fn dyn_run<R, F>(len: usize, threads: usize, grain: usize, run_chunk: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> Vec<R> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(len.div_ceil(grain)));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + grain).min(len);
                    let out = run_chunk(start, end);
                    parts
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((start, out));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("work-stealing worker panicked");
        }
    });
    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(start, _)| start);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

/// Work-stealing, order-preserving map over a slice.
///
/// Semantically identical to [`par_map`] — for a pure `f` the output is
/// bit-identical to the serial `items.iter().map(f)` in input order — but
/// items are claimed dynamically in `grain`-sized ranges from a shared
/// cursor, so skewed per-item cost cannot strand work behind one slow
/// worker. `LAN_SCHED` can force the serial or static path (same output).
pub fn par_map_dyn<T, R, F>(items: &[T], grain: Grain, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match sched() {
        Sched::Sequential => return items.iter().map(f).collect(),
        Sched::Static => return par_map(items, f),
        Sched::WorkStealing => {}
    }
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let g = grain.size(items.len(), threads);
    dyn_run(items.len(), threads, g, |start, end| {
        items[start..end].iter().map(&f).collect()
    })
}

/// [`par_map_dyn`] over the index range `0..n` (no index buffer needed).
pub fn par_map_indices_dyn<R, F>(n: usize, grain: Grain, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match sched() {
        Sched::Sequential => return (0..n).map(f).collect(),
        Sched::Static => return par_map_indices(n, f),
        Sched::WorkStealing => {}
    }
    let threads = num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let g = grain.size(n, threads);
    dyn_run(n, threads, g, |start, end| (start..end).map(&f).collect())
}

/// Work-stealing variant of [`par_chunks`]: each dynamically claimed range
/// is handed to `f` with its starting offset, and per-range outputs are
/// concatenated in input order.
///
/// Like [`par_chunks`], the chunk boundaries depend on the worker count
/// (and here on the grain), so `f` must be chunk-homomorphic — `f(o, ab)`
/// must equal `f(o, a) ++ f(o + |a|, b)` — for the output to be identical
/// across schedulers and thread counts. Per-item maps that only use the
/// offset to label items satisfy this trivially.
pub fn par_chunks_dyn<T, R, F>(items: &[T], grain: Grain, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    match sched() {
        Sched::Sequential => return f(0, items),
        Sched::Static => return par_chunks(items, f),
        Sched::WorkStealing => {}
    }
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return f(0, items);
    }
    let g = grain.size(items.len(), threads);
    dyn_run(items.len(), threads, g, |start, end| {
        f(start, &items[start..end])
    })
}

/// Parallel, order-preserving map over a slice.
///
/// Splits `items` into one contiguous chunk per worker; falls back to a
/// plain serial map when a single worker suffices. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// [`par_map`] over the index range `0..n`.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

/// Hands each worker one contiguous chunk of `items` (with the chunk's
/// starting offset) and concatenates the per-chunk outputs in order.
///
/// Use this instead of [`par_map`] when per-item closures would waste work
/// that a worker can share across its whole chunk (e.g. batch accumulators).
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return f(0, items);
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| s.spawn(move || f(ci * chunk, c)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_chunks worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..101).collect();
        let out = par_map(&items, |&x| x * 2);
        let serial: Vec<u32> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = par_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x: &u32| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x * 3), vec![21]);
    }

    #[test]
    fn par_map_indices_matches_range() {
        let out = par_map_indices(10, |i| i * i);
        let serial: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<u32> = (0..37).collect();
        let out = par_chunks(&items, |offset, c| {
            c.iter()
                .enumerate()
                .map(|(i, &x)| (offset + i, x))
                .collect()
        });
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, i as u32);
        }
    }

    // The only test that mutates LAN_THREADS — through the serialized
    // testenv helper (raw set_var raced concurrent num_threads readers
    // under the parallel test harness).
    #[test]
    fn lan_threads_env_override() {
        testenv::with_env(&[("LAN_THREADS", Some("1"))], || {
            assert_eq!(num_threads(), 1);
            let items: Vec<u32> = (0..20).collect();
            assert_eq!(par_map(&items, |&x| x + 1).len(), 20);
        });
        testenv::with_env(&[("LAN_THREADS", Some("4"))], || {
            assert_eq!(num_threads(), 4);
        });
        // The override is gone once the scope closes.
        testenv::with_env(&[("LAN_THREADS", None)], || {
            assert!(num_threads() >= 1);
        });
    }

    #[test]
    fn lan_threads_reject_set_is_loud_not_silent() {
        // Every malformed LAN_THREADS value must produce a typed error
        // from the fallible path and fall back to host parallelism on the
        // total path — never a silent clamp.
        for bad in ["0", "-3", "abc", "1.5", "", "0x8", "  "] {
            testenv::with_env(&[("LAN_THREADS", Some(bad))], || {
                let err = try_num_threads().expect_err(bad);
                assert_eq!(err.key, "LAN_THREADS");
                assert_eq!(err.value, bad);
                assert!(num_threads() >= 1, "total path must still work");
            });
        }
        for good in ["1", "2", " 8 "] {
            testenv::with_env(&[("LAN_THREADS", Some(good))], || {
                let n = try_num_threads().unwrap();
                assert_eq!(n, good.trim().parse::<usize>().unwrap());
                assert_eq!(num_threads(), n);
            });
        }
    }

    #[test]
    fn env_warnings_fire_once_per_key() {
        let e = env::EnvError {
            key: "LAN_WARN_PROBE".into(),
            value: "x".into(),
            reason: "test".into(),
        };
        env::reset_warnings();
        // Both calls go through; the dedup set must register the key.
        env::warn_once(&e);
        env::warn_once(&e);
        env::reset_warnings();
        env::warn_once(&e);
    }

    #[test]
    fn env_parsers() {
        assert_eq!(env::positive_usize("3"), Ok(3));
        assert!(env::positive_usize("0").is_err());
        assert!(env::positive_usize("-1").is_err());
        assert!(env::positive_usize("x").is_err());
        assert_eq!(env::any_usize("0"), Ok(0));
        assert!(env::any_usize("-5").is_err());
    }

    #[test]
    fn with_env_restores_on_panic() {
        let before = std::env::var("LAN_TESTENV_PROBE").ok();
        let r = std::panic::catch_unwind(|| {
            testenv::with_env(&[("LAN_TESTENV_PROBE", Some("boom"))], || {
                panic!("inside with_env");
            })
        });
        assert!(r.is_err());
        assert_eq!(std::env::var("LAN_TESTENV_PROBE").ok(), before);
    }
}
