//! Scoped-thread parallelism helpers shared by every LAN crate.
//!
//! The LAN cost model is dominated by expensive distance (GED) calls and
//! GNN forward passes, which makes the workload embarrassingly parallel
//! across shards, queries, and construction candidates. These helpers put
//! that parallelism behind two order-preserving primitives built on
//! `std::thread::scope` — no external dependencies, no global pool, no
//! `unsafe`.
//!
//! * [`par_map`] — map a function over a slice, preserving input order;
//! * [`par_map_indices`] — the `0..n` index variant;
//! * [`par_chunks`] — hand each worker a contiguous sub-slice.
//!
//! Thread count comes from [`num_threads`]: the `LAN_THREADS` environment
//! variable when set (any positive integer; `1` forces every helper into
//! its serial fallback), otherwise [`std::thread::available_parallelism`].
//! The variable is re-read on every call so tests and benchmarks can flip
//! it at runtime.
//!
//! Determinism contract: all helpers return results in input order, so a
//! pure `f` yields output identical to the serial `items.iter().map(f)` —
//! the property the parallel == sequential equivalence tests in `lan-core`
//! rely on.

/// Serialized, scoped environment-variable mutation for tests.
///
/// Environment variables are process-wide: a test calling
/// `set_var("LAN_THREADS", ..)` under the parallel test harness races
/// every concurrent [`num_threads`] reader. [`testenv::with_env`] takes a
/// global lock for the whole closure, applies the overrides, and restores
/// the previous values afterwards — even when the closure panics. Every
/// workspace test that mutates a `LAN_*` variable (`LAN_THREADS`, the
/// budget variables, `LAN_FAULTS`) must go through it.
pub mod testenv {
    use std::sync::{Mutex, MutexGuard};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the env lock without mutating anything — for tests that read
    /// env-sensitive state and must not interleave with a mutator.
    pub fn lock() -> MutexGuard<'static, ()> {
        ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Restores one variable to its pre-override value on drop, so the
    /// environment is clean even when the closure panics.
    struct Restore {
        key: String,
        prev: Option<String>,
    }

    impl Drop for Restore {
        fn drop(&mut self) {
            match &self.prev {
                Some(v) => std::env::set_var(&self.key, v),
                None => std::env::remove_var(&self.key),
            }
        }
    }

    /// Runs `f` with the given overrides applied (`None` unsets the
    /// variable) under the global env lock; previous values are restored
    /// afterwards, panic or not.
    pub fn with_env<R>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
        let _l = lock();
        let _restore: Vec<Restore> = vars
            .iter()
            .map(|&(k, v)| {
                let prev = std::env::var(k).ok();
                match v {
                    Some(val) => std::env::set_var(k, val),
                    None => std::env::remove_var(k),
                }
                Restore {
                    key: k.to_string(),
                    prev,
                }
            })
            .collect();
        f()
    }
}

/// Worker count used by the helpers: `LAN_THREADS` env override when set
/// (clamped to at least 1), else the host's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("LAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Parallel, order-preserving map over a slice.
///
/// Splits `items` into one contiguous chunk per worker; falls back to a
/// plain serial map when a single worker suffices. Panics in `f` propagate.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// [`par_map`] over the index range `0..n`.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

/// Hands each worker one contiguous chunk of `items` (with the chunk's
/// starting offset) and concatenates the per-chunk outputs in order.
///
/// Use this instead of [`par_map`] when per-item closures would waste work
/// that a worker can share across its whole chunk (e.g. batch accumulators).
pub fn par_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        return f(0, items);
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| s.spawn(move || f(ci * chunk, c)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_chunks worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..101).collect();
        let out = par_map(&items, |&x| x * 2);
        let serial: Vec<u32> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = par_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x: &u32| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x * 3), vec![21]);
    }

    #[test]
    fn par_map_indices_matches_range() {
        let out = par_map_indices(10, |i| i * i);
        let serial: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<u32> = (0..37).collect();
        let out = par_chunks(&items, |offset, c| {
            c.iter()
                .enumerate()
                .map(|(i, &x)| (offset + i, x))
                .collect()
        });
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, i as u32);
        }
    }

    // The only test that mutates LAN_THREADS — through the serialized
    // testenv helper (raw set_var raced concurrent num_threads readers
    // under the parallel test harness).
    #[test]
    fn lan_threads_env_override() {
        testenv::with_env(&[("LAN_THREADS", Some("1"))], || {
            assert_eq!(num_threads(), 1);
            let items: Vec<u32> = (0..20).collect();
            assert_eq!(par_map(&items, |&x| x + 1).len(), 20);
        });
        testenv::with_env(&[("LAN_THREADS", Some("4"))], || {
            assert_eq!(num_threads(), 4);
        });
        // The override is gone once the scope closes.
        testenv::with_env(&[("LAN_THREADS", None)], || {
            assert!(num_threads() >= 1);
        });
    }

    #[test]
    fn with_env_restores_on_panic() {
        let before = std::env::var("LAN_TESTENV_PROBE").ok();
        let r = std::panic::catch_unwind(|| {
            testenv::with_env(&[("LAN_TESTENV_PROBE", Some("boom"))], || {
                panic!("inside with_env");
            })
        });
        assert!(r.is_err());
        assert_eq!(std::env::var("LAN_TESTENV_PROBE").ok(), before);
    }
}
