//! Determinism contract of the work-stealing executor: for any pure `f`,
//! `par_map_dyn` / `par_map_indices_dyn` / `par_chunks_dyn` return output
//! bit-identical to the static chunked helpers and to a plain serial map —
//! across thread counts, grain policies, and forced schedulers, under
//! empty inputs and panics. The whole workspace's "dynamic == static ==
//! sequential" guarantee reduces to these properties plus purity of the
//! per-item closures (which the `lan-core` end-to-end tests pin).

use lan_par::{par_chunks_dyn, par_map, par_map_dyn, par_map_indices_dyn, testenv, Grain, Sched};
use std::sync::atomic::{AtomicUsize, Ordering};

const GRAINS: [Grain; 5] = [
    Grain::Fine,
    Grain::Auto,
    Grain::Coarse,
    Grain::Fixed(3),
    Grain::Fixed(1000),
];

const THREAD_COUNTS: [&str; 3] = ["1", "2", "7"];

/// A deliberately skewed workload: item cost varies by two orders of
/// magnitude, so dynamic claims interleave very differently from static
/// chunks — exactly the regime where a scheduling bug would reorder or
/// drop results.
fn skewed(x: &u64) -> u64 {
    let mut acc = *x;
    let spins = if x.is_multiple_of(7) { 2000 } else { 20 };
    for i in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

#[test]
fn dyn_equals_static_equals_sequential_across_threads_and_grains() {
    let items: Vec<u64> = (0..257).collect();
    let serial: Vec<u64> = items.iter().map(skewed).collect();
    for threads in THREAD_COUNTS {
        for sched in ["seq", "static", "ws"] {
            testenv::with_env(
                &[("LAN_THREADS", Some(threads)), ("LAN_SCHED", Some(sched))],
                || {
                    let st = par_map(&items, skewed);
                    assert_eq!(st, serial, "static diverged (threads={threads})");
                    for grain in GRAINS {
                        let dy = par_map_dyn(&items, grain, skewed);
                        assert_eq!(
                            dy, serial,
                            "par_map_dyn diverged (threads={threads}, sched={sched}, {grain:?})"
                        );
                        let di = par_map_indices_dyn(items.len(), grain, |i| skewed(&items[i]));
                        assert_eq!(
                            di, serial,
                            "par_map_indices_dyn diverged (threads={threads}, {grain:?})"
                        );
                    }
                },
            );
        }
    }
}

#[test]
fn par_chunks_dyn_concatenates_in_order() {
    // A chunk-homomorphic f: per-item results labeled with their global
    // index. Output must be the identity labeling for every scheduler,
    // thread count, and grain.
    let items: Vec<u32> = (0..143).collect();
    for threads in THREAD_COUNTS {
        for sched in ["seq", "static", "ws"] {
            testenv::with_env(
                &[("LAN_THREADS", Some(threads)), ("LAN_SCHED", Some(sched))],
                || {
                    for grain in GRAINS {
                        let out = par_chunks_dyn(&items, grain, |offset, chunk| {
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(i, &x)| (offset + i, x * 2))
                                .collect()
                        });
                        assert_eq!(out.len(), items.len());
                        for (i, &(idx, x)) in out.iter().enumerate() {
                            assert_eq!(idx, i, "sched={sched} grain={grain:?}");
                            assert_eq!(x, 2 * i as u32);
                        }
                    }
                },
            );
        }
    }
}

#[test]
fn dyn_runs_every_item_exactly_once() {
    // Cursor bookkeeping: no item may be skipped or double-claimed, even
    // when the grain does not divide the length.
    for (len, grain) in [
        (0usize, Grain::Fine),
        (1, Grain::Fixed(4)),
        (97, Grain::Fixed(8)),
        (64, Grain::Fixed(64)),
    ] {
        testenv::with_env(
            &[("LAN_THREADS", Some("7")), ("LAN_SCHED", Some("ws"))],
            || {
                let calls = AtomicUsize::new(0);
                let items: Vec<usize> = (0..len).collect();
                let out = par_map_dyn(&items, grain, |&x| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    x
                });
                assert_eq!(out, items, "len={len} grain={grain:?}");
                assert_eq!(calls.load(Ordering::Relaxed), len);
            },
        );
    }
}

#[test]
fn empty_inputs_are_fine() {
    let empty: Vec<u32> = Vec::new();
    for sched in ["seq", "static", "ws"] {
        testenv::with_env(
            &[("LAN_SCHED", Some(sched)), ("LAN_THREADS", Some("7"))],
            || {
                assert!(par_map_dyn(&empty, Grain::Fine, |&x: &u32| x).is_empty());
                assert!(par_map_indices_dyn(0, Grain::Auto, |i| i).is_empty());
                assert!(par_chunks_dyn(&empty, Grain::Coarse, |_, c| c.to_vec()).is_empty());
            },
        );
    }
}

#[test]
fn panics_propagate_not_deadlock() {
    // A panicking item must abort the whole call with a propagated panic
    // (sibling workers finish draining the cursor first, so the scope
    // joins cleanly) — never a silent partial result or a hang.
    for sched in ["seq", "static", "ws"] {
        testenv::with_env(
            &[("LAN_SCHED", Some(sched)), ("LAN_THREADS", Some("4"))],
            || {
                let items: Vec<u32> = (0..100).collect();
                let r = std::panic::catch_unwind(|| {
                    par_map_dyn(&items, Grain::Fine, |&x| {
                        if x == 63 {
                            panic!("boom at {x}");
                        }
                        x
                    })
                });
                assert!(r.is_err(), "sched={sched}: panic must propagate");
                // The executor is still usable afterwards.
                assert_eq!(par_map_dyn(&items, Grain::Auto, |&x| x + 1).len(), 100);
            },
        );
    }
}

#[test]
fn lan_sched_env_parsing() {
    for (raw, want) in [
        ("seq", Sched::Sequential),
        ("sequential", Sched::Sequential),
        ("static", Sched::Static),
        ("ws", Sched::WorkStealing),
        ("steal", Sched::WorkStealing),
        ("dyn", Sched::WorkStealing),
        (" WS ", Sched::WorkStealing),
    ] {
        testenv::with_env(&[("LAN_SCHED", Some(raw))], || {
            assert_eq!(lan_par::try_sched().unwrap(), want, "raw={raw:?}");
        });
    }
    testenv::with_env(&[("LAN_SCHED", None)], || {
        assert_eq!(lan_par::try_sched().unwrap(), Sched::WorkStealing);
    });
    for bad in ["", "fast", "ws2", "0"] {
        testenv::with_env(&[("LAN_SCHED", Some(bad))], || {
            let err = lan_par::try_sched().expect_err(bad);
            assert_eq!(err.key, "LAN_SCHED");
            // The total path must still run (falls back to work stealing).
            assert_eq!(lan_par::sched(), Sched::WorkStealing);
        });
    }
}

#[test]
fn grain_sizes_are_sane() {
    // Fine is always 1; Auto/Coarse scale with len/threads, never zero,
    // and cover the whole input in at most len claims.
    assert_eq!(Grain::Fine.size(1_000_000, 8), 1);
    assert_eq!(
        Grain::Fixed(0).size(10, 4),
        1,
        "zero grain cannot make progress"
    );
    for len in [0usize, 1, 7, 100, 10_000] {
        for threads in [1usize, 2, 7, 64] {
            for g in GRAINS {
                let s = g.size(len, threads);
                assert!(s >= 1, "grain {g:?} collapsed to 0 at len={len}");
            }
        }
    }
    // Coarse hands out bigger chunks than Auto on big uniform batches.
    assert!(Grain::Coarse.size(10_000, 4) >= Grain::Auto.size(10_000, 4));
}
