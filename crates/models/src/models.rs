//! The learned components of LAN and their training pipelines.
//!
//! * the **GIN graph embedder** (node2vec substitute, see DESIGN.md) trained
//!   as a Siamese distance regressor — its embeddings drive KMeans
//!   clustering, the cluster model `M_c`, and the L2route baseline;
//! * the **cross-graph encoder** shared by the neighborhood model and the
//!   neighbor rankers;
//! * **`M_nh`** (paper §V-B1): cross-graph embedding `h_{G,Q}` → MLP →
//!   "is G in N_Q?", trained with negative downsampling;
//! * **`M_c`** (paper §V-B2): per-cluster intersection-size regressor;
//! * **`M_rk^i`** (paper §IV-C): `100/y` binary rankers over
//!   `h_{G',Q} ‖ h_G`, trained only on routing states inside the query
//!   neighborhood, with heads trained on cached pair embeddings from the
//!   frozen encoder (an engineering simplification documented in
//!   DESIGN.md).

use crate::fused_service::FusedScoreService;
use crate::kmeans::KMeans;
use lan_datasets::Dataset;
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, Gin, GnnConfig};
use lan_graph::Graph;
use lan_obs::{names, span, Counter, TimerCell};
use lan_tensor::{sigmoid, Adam, FusedHeads, Matrix, Mlp, MlpScratch, ParamStore, StepDecay, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hyperparameters for model training and inference.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// GNN embedding dimension (paper: 128; scaled default 32).
    pub embed_dim: usize,
    /// GNN layer count `L`.
    pub layers: usize,
    /// The batch parameter `y` in percent (paper: 20 → 5 rankers).
    pub batch_pct: usize,
    /// γ\* is set so `N_Q` covers this many NNs... (paper: 200)
    pub nh_cover_k: usize,
    /// ...for this fraction of training queries (paper: 0.9).
    pub nh_cover_quantile: f64,
    /// Training epochs (paper: 1,000 on a V100S; scaled default).
    pub epochs: usize,
    /// Cap on training samples visited per epoch.
    pub max_samples_per_epoch: usize,
    /// KMeans cluster count for the optimized `M_nh` design.
    pub clusters: usize,
    /// Clusters retained by `M_c` at query time.
    pub top_clusters: usize,
    /// Hidden width of the MLP heads.
    pub mlp_hidden: usize,
    /// `s`: samples drawn from the predicted neighborhood (paper: 4).
    pub init_samples: usize,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            embed_dim: 32,
            layers: 2,
            batch_pct: 20,
            nh_cover_k: 200,
            nh_cover_quantile: 0.9,
            epochs: 6,
            max_samples_per_epoch: 1200,
            clusters: 8,
            top_clusters: 3,
            mlp_hidden: 32,
            init_samples: 4,
            seed: 0xCAFE,
        }
    }
}

/// Builds the ranker input feature for one neighbor: the paper's
/// `h_{G',Q} ‖ h_G`, augmented with the Siamese-GIN distance signal
/// (elementwise squared difference between the query and neighbor GIN
/// embeddings plus its sum, i.e. the embedder's distance estimate). The
/// GIN embedder is trained as a distance regressor, so this injects an
/// explicit learned-distance feature the binary rankers can threshold.
pub(crate) fn rk_feature(pair: &[f32], h_g: &[f32], q_gin: &[f32], nb_gin: &[f32]) -> Vec<f32> {
    let mut feat = Vec::with_capacity(pair.len() + h_g.len() + nb_gin.len() + 1);
    feat.extend_from_slice(pair);
    feat.extend_from_slice(h_g);
    let mut total = 0.0f32;
    for (a, b) in q_gin.iter().zip(nb_gin) {
        let d2 = (a - b) * (a - b);
        feat.push(d2);
        total += d2;
    }
    feat.push(total);
    feat
}

/// [`rk_feature`] written into a preallocated row of a batch feature
/// matrix (same layout and accumulation order, no per-neighbor `Vec`).
pub(crate) fn rk_feature_into(
    out: &mut [f32],
    pair: &[f32],
    h_g: &[f32],
    q_gin: &[f32],
    nb_gin: &[f32],
) {
    let (p, rest) = out.split_at_mut(pair.len());
    p.copy_from_slice(pair);
    let (g, rest) = rest.split_at_mut(h_g.len());
    g.copy_from_slice(h_g);
    let mut total = 0.0f32;
    for (k, (a, b)) in q_gin.iter().zip(nb_gin).enumerate() {
        let d2 = (a - b) * (a - b);
        rest[k] = d2;
        total += d2;
    }
    rest[q_gin.len()] = total;
}

/// Input dimension of [`rk_feature`] given the embedding dim.
pub(crate) fn rk_feature_dim(embed_dim: usize) -> usize {
    4 * embed_dim + 1
}

/// Descending score sort with a NaN total order and an id tiebreak: a NaN
/// head score (a pathological but possible model output) must not scramble
/// the partition or panic — NaNs sort deterministically ahead of all finite
/// scores and ties break toward the smaller graph id.
pub(crate) fn sort_scored_desc(scored: &mut [(f32, u32)]) {
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
}

/// A per-query pair-embedding cache: one flat `db_size × pair_dim` slab
/// keyed by database graph id (allocated lazily on first use), plus a
/// presence bitmap. Replaces the old per-id `HashMap<u32, Vec<f32>>` — no
/// hashing on the hot path and no per-entry allocation.
#[derive(Debug)]
struct PairSlab {
    dim: usize,
    data: Vec<f32>,
    present: Vec<bool>,
    /// Staging buffer the tape-free forward writes into before the row copy.
    tmp: Vec<f32>,
}

impl PairSlab {
    fn new(dim: usize) -> Self {
        PairSlab {
            dim,
            data: Vec::new(),
            present: Vec::new(),
            tmp: Vec::new(),
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.present.len() < n {
            self.present.resize(n, false);
            self.data.resize(n * self.dim, 0.0);
        }
    }

    fn has(&self, g: u32) -> bool {
        self.present.get(g as usize).copied().unwrap_or(false)
    }

    fn row(&self, g: u32) -> &[f32] {
        &self.data[g as usize * self.dim..(g as usize + 1) * self.dim]
    }

    fn insert(&mut self, g: u32, v: &[f32]) {
        self.data[g as usize * self.dim..(g as usize + 1) * self.dim].copy_from_slice(v);
        self.present[g as usize] = true;
    }

    /// Prepares the slab for reuse by another query: every entry is
    /// marked absent but the backing allocations are kept — the point of
    /// pooling slabs in a [`SlabArena`].
    fn recycle(&mut self) {
        self.present.fill(false);
    }
}

/// A reusable pool of per-query [`PairSlab`]s for the serving path.
///
/// A cold slab lazily grows to `db_size × pair_dim` floats on its first
/// `ensure_pairs`; under a serving workload that is a large allocation
/// per request. Contexts built through
/// [`LanModels::query_context_pooled`] draw their slab from this arena
/// instead and return it (recycled, allocations intact) when the context
/// drops, so steady-state serving allocates no slab memory at all.
/// Recycling only clears the presence bitmap — stale rows are never
/// readable because every lookup checks presence first.
pub struct SlabArena {
    dim: usize,
    slabs: Mutex<Vec<PairSlab>>,
}

impl SlabArena {
    /// An arena for contexts of `models` (slab rows are pair embeddings,
    /// so the row width is the cross-encoder's pair dimension).
    pub fn new(models: &LanModels) -> Self {
        SlabArena {
            dim: models.cross.pair_dim(),
            slabs: Mutex::new(Vec::new()),
        }
    }

    /// Slabs currently parked in the pool (test observability).
    pub fn pooled(&self) -> usize {
        self.slabs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn take(&self) -> PairSlab {
        self.slabs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_else(|| PairSlab::new(self.dim))
    }

    fn put(&self, mut slab: PairSlab) {
        if slab.dim != self.dim {
            return;
        }
        slab.recycle();
        self.slabs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(slab);
    }
}

thread_local! {
    /// Per-thread scratch for head scoring (feature batch, fused-head
    /// intermediates, MLP activations). Mirrors `lan_gnn`'s per-thread
    /// forward scratch: exclusively borrowed around one scoring call, holds
    /// no cross-call state beyond its allocations.
    static RANK_SCRATCH: RefCell<RankScratch> = RefCell::new(RankScratch::new());
}

struct RankScratch {
    feats: Matrix,
    hidden: Matrix,
    logits: Matrix,
    mlp: MlpScratch,
    input: Vec<f32>,
}

impl RankScratch {
    fn new() -> Self {
        RankScratch {
            feats: Matrix::zeros(0, 0),
            hidden: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            mlp: MlpScratch::default(),
            input: Vec::new(),
        }
    }
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// γ\* chosen by the covering rule.
    pub gamma_star: f64,
    /// `M_nh` precision on the validation queries (Fig. 8's metric).
    pub nh_precision: f64,
    /// `M_nh` recall on the validation queries.
    pub nh_recall: f64,
    /// Final `M_nh` training loss.
    pub nh_loss: f32,
    /// Final mean ranker training loss.
    pub rk_loss: f32,
}

/// The trained LAN model bundle plus precomputed database artifacts.
pub struct LanModels {
    pub cfg: ModelConfig,
    pub num_labels: usize,
    pub gin: Gin,
    pub gin_store: ParamStore,
    pub cross: CrossGraphNet,
    pub cross_store: ParamStore,
    pub nh_head: Mlp,
    pub rk_heads: Vec<Mlp>,
    /// The ranker heads fused into one `[num_heads·h × feat_dim]` kernel
    /// (built once after training) so a whole hop's neighbors are scored by
    /// every head with a single transposed-RHS matmul.
    pub rk_fused: FusedHeads,
    pub rk_store: ParamStore,
    pub mc_head: Mlp,
    pub mc_store: ParamStore,
    pub kmeans: KMeans,
    pub gamma_star: f64,
    /// GIN embedding of every database graph.
    pub db_embeds: Vec<Vec<f32>>,
    /// Packed quantized codes of `db_embeds` with per-mode GED calibration
    /// — the quantized prefilter tier (`None` only for degenerate
    /// databases with nothing to quantize).
    pub quant: Option<crate::quant_index::QuantIndex>,
    /// Precomputed compressed GNN-graphs of the database (paper §VI-C).
    pub db_cgs: Vec<CompressedGnnGraph>,
    /// Cross-graph inputs, compressed and plain, per database graph.
    pub db_inputs_cg: Vec<CrossInput>,
    pub db_inputs_plain: Vec<CrossInput>,
}

/// A query's precomputed learning context (built once per query). Owns the
/// per-query pair-embedding cache and the per-query GNN wall-clock
/// accumulator, so concurrent queries never share mutable inference state.
pub struct QueryContext {
    pub input: CrossInput,
    pub gin_embed: Vec<f32>,
    /// Per-query memo of pair embeddings `h_G ‖ h_Q` by database graph id:
    /// the initial-node selection (`M_nh`) and the neighbor rankers
    /// (`M_rk`) share one encoder, and proximity-graph neighborhoods
    /// overlap, so each database graph is embedded against the query at
    /// most once.
    pair_cache: RefCell<PairSlab>,
    /// Wall-clock spent in GNN inference for this query (Fig. 11
    /// breakdown). Atomic, so reads don't need `&mut`.
    gnn_timer: TimerCell,
    /// Cache counters resolved once per query (also guarantees both
    /// `gnn.infer.cache.*` metrics are registered whenever a context
    /// exists, hits or not).
    hit: &'static Counter,
    miss: &'static Counter,
    /// When the context was built through
    /// [`LanModels::query_context_pooled`], the arena its slab returns to
    /// on drop.
    arena: Option<Arc<SlabArena>>,
}

impl QueryContext {
    /// Wall-clock spent in GNN inference through this context so far.
    pub fn gnn_time(&self) -> Duration {
        self.gnn_timer.total()
    }
}

impl Drop for QueryContext {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            let slab = std::mem::replace(&mut *self.pair_cache.borrow_mut(), PairSlab::new(0));
            arena.put(slab);
        }
    }
}

impl LanModels {
    /// Number of rankers `100 / y`.
    pub fn num_rankers(cfg: &ModelConfig) -> usize {
        (100 / cfg.batch_pct).max(1)
    }

    /// Trains all models on the dataset's training queries, given the
    /// proximity-graph base adjacency (needed for ranker labels).
    ///
    /// `train_dists[qi][g]` must hold the operational distance from
    /// training query `qi` (indexing `dataset.split.train`) to every
    /// database graph `g` — computed once by the caller and shared across
    /// all label builders.
    pub fn train(
        dataset: &Dataset,
        adj: &[Vec<u32>],
        train_dists: &[Vec<f64>],
        cfg: ModelConfig,
    ) -> (Self, TrainReport) {
        assert_eq!(train_dists.len(), dataset.split.train.len());
        let num_labels = dataset.spec.num_labels as usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let gcfg = GnnConfig::uniform(num_labels, cfg.embed_dim, cfg.layers);

        // --- γ*: the paper's covering rule. ---
        let cover_k = cfg
            .nh_cover_k
            .min(dataset.graphs.len().saturating_sub(1))
            .max(1);
        let mut kth: Vec<f64> = train_dists
            .iter()
            .map(|ds| {
                let mut v = ds.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                v[cover_k - 1]
            })
            .collect();
        kth.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let qi = ((kth.len() as f64 - 1.0) * cfg.nh_cover_quantile).round() as usize;
        let gamma_star = kth[qi.min(kth.len() - 1)];

        // --- GIN embedder: Siamese squared-L2 distance regression. ---
        let mut gin_store = ParamStore::new();
        let gin = Gin::new(&mut rng, &mut gin_store, gcfg.clone());
        train_embedder(dataset, train_dists, &gin, &mut gin_store, &cfg, &mut rng);
        let db_embeds: Vec<Vec<f32>> =
            lan_par::par_map_dyn(&dataset.graphs, lan_par::Grain::Coarse, |g| {
                gin.embed(&gin_store, g).data().to_vec()
            });

        // --- Quantized prefilter tier: pack codes, calibrate to GED. ---
        // Reuses the train_dists matrix, so calibration costs zero extra
        // distance computations; the training-query embeddings are one
        // cheap GIN forward each.
        let train_embeds: Vec<Vec<f32>> =
            lan_par::par_map_indices_dyn(train_dists.len(), lan_par::Grain::Auto, |qi| {
                gin.embed(&gin_store, &dataset.queries[dataset.split.train[qi]])
                    .data()
                    .to_vec()
            });
        let quant = crate::quant_index::QuantIndex::build(&db_embeds, &train_embeds, train_dists);

        // --- KMeans over embeddings. ---
        let kmeans = KMeans::fit(&db_embeds, cfg.clusters, 50, cfg.seed ^ 0x5eed);

        // --- M_nh: cross encoder + head, negative downsampling. ---
        let mut cross_store = ParamStore::new();
        let cross = CrossGraphNet::new(&mut rng, &mut cross_store, gcfg.clone());
        let nh_head = Mlp::new(
            &mut rng,
            &mut cross_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        let dist_head = Mlp::new(
            &mut rng,
            &mut cross_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        let db_inputs_plain: Vec<CrossInput> =
            lan_par::par_map_dyn(&dataset.graphs, lan_par::Grain::Coarse, |g| {
                CrossInput::plain(g, &gcfg)
            });
        let nh_loss = train_nh(
            dataset,
            train_dists,
            gamma_star,
            &cross,
            &nh_head,
            &dist_head,
            &mut cross_store,
            &db_inputs_plain,
            &gcfg,
            &cfg,
            &mut rng,
        );

        // --- M_rk heads on frozen-encoder pair embeddings. ---
        let mut rk_store = ParamStore::new();
        let nr = Self::num_rankers(&cfg);
        let rk_heads: Vec<Mlp> = (0..nr)
            .map(|_| {
                Mlp::new(
                    &mut rng,
                    &mut rk_store,
                    &[rk_feature_dim(cfg.embed_dim), cfg.mlp_hidden, 1],
                )
            })
            .collect();
        let rk_loss = train_rk(
            dataset,
            adj,
            train_dists,
            gamma_star,
            &cross,
            &cross_store,
            &db_inputs_plain,
            &db_embeds,
            &gin,
            &gin_store,
            &rk_heads,
            &mut rk_store,
            &gcfg,
            &cfg,
            &mut rng,
        );

        // --- M_c: per-cluster intersection-size regression. ---
        let mut mc_store = ParamStore::new();
        let mc_head = Mlp::new(
            &mut rng,
            &mut mc_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        train_mc(
            dataset,
            train_dists,
            gamma_star,
            &kmeans,
            &db_embeds,
            &gin,
            &gin_store,
            &mc_head,
            &mut mc_store,
            &cfg,
            &mut rng,
        );

        // --- Precompute database CGs (paper §VI-C: one-off). ---
        let db_cgs: Vec<CompressedGnnGraph> =
            lan_par::par_map_dyn(&dataset.graphs, lan_par::Grain::Coarse, |g| {
                CompressedGnnGraph::build(g, cfg.layers)
            });
        let db_inputs_cg: Vec<CrossInput> =
            lan_par::par_map_dyn(&db_cgs, lan_par::Grain::Coarse, |cg| {
                CrossInput::compressed(cg, &gcfg)
            });

        let rk_fused = FusedHeads::new(&rk_heads, &rk_store);
        let models = LanModels {
            cfg,
            num_labels,
            gin,
            gin_store,
            cross,
            cross_store,
            nh_head,
            rk_heads,
            rk_fused,
            rk_store,
            mc_head,
            mc_store,
            kmeans,
            gamma_star,
            db_embeds,
            quant,
            db_cgs,
            db_inputs_cg,
            db_inputs_plain,
        };

        // --- Validation precision of M_nh (Fig. 8). ---
        let (nh_precision, nh_recall) = models.nh_precision_on(dataset, &dataset.split.val);

        let report = TrainReport {
            gamma_star,
            nh_precision,
            nh_recall,
            nh_loss,
            rk_loss,
        };
        (models, report)
    }

    /// GNN config used by all networks.
    pub fn gnn_config(&self) -> GnnConfig {
        GnnConfig::uniform(self.num_labels, self.cfg.embed_dim, self.cfg.layers)
    }

    /// GIN embedding of an arbitrary graph (tape-free).
    pub fn embed(&self, g: &Graph) -> Vec<f32> {
        let mut out = Vec::new();
        lan_gnn::with_scratch(|s| self.gin.infer_embed(&self.gin_store, g, s, &mut out));
        out
    }

    /// Builds the query's learning context. With `use_cg` the query's
    /// compressed GNN-graph is built once here (the paper's on-the-fly,
    /// one-off CG cost).
    pub fn query_context(&self, q: &Graph, use_cg: bool) -> QueryContext {
        let _s = span("gnn.context");
        let gnn_timer = TimerCell::new();
        let (input, gin_embed) = gnn_timer.time(|| {
            let gcfg = self.gnn_config();
            let input = if use_cg {
                let cg = CompressedGnnGraph::build(q, self.cfg.layers);
                CrossInput::compressed(&cg, &gcfg)
            } else {
                CrossInput::plain(q, &gcfg)
            };
            (input, self.embed(q))
        });
        QueryContext {
            input,
            gin_embed,
            pair_cache: RefCell::new(PairSlab::new(self.cross.pair_dim())),
            gnn_timer,
            hit: lan_obs::counter(names::GNN_INFER_CACHE_HIT),
            miss: lan_obs::counter(names::GNN_INFER_CACHE_MISS),
            arena: None,
        }
    }

    /// [`LanModels::query_context`] drawing the pair slab from `arena`
    /// instead of allocating a fresh one; the slab returns to the arena
    /// (recycled) when the context drops. The serving path builds one
    /// context per request through this, so steady-state traffic reuses a
    /// bounded set of slabs.
    pub fn query_context_pooled(
        &self,
        q: &Graph,
        use_cg: bool,
        arena: &Arc<SlabArena>,
    ) -> QueryContext {
        let mut ctx = self.query_context(q, use_cg);
        *ctx.pair_cache.borrow_mut() = arena.take();
        ctx.arena = Some(Arc::clone(arena));
        ctx
    }

    /// Fills the per-query cache for every id in `ids` (tape-free forwards
    /// for the misses), counting hits and misses per lookup.
    fn ensure_pairs(&self, ctx: &QueryContext, ids: &[u32], use_cg: bool) {
        let mut slab = ctx.pair_cache.borrow_mut();
        slab.ensure_capacity(self.db_embeds.len());
        let PairSlab {
            dim,
            data,
            present,
            tmp,
        } = &mut *slab;
        ctx.gnn_timer.time(|| {
            lan_gnn::with_scratch(|scr| {
                for &g in ids {
                    let gi = g as usize;
                    if present[gi] {
                        ctx.hit.inc();
                        continue;
                    }
                    ctx.miss.inc();
                    let input = if use_cg {
                        &self.db_inputs_cg[gi]
                    } else {
                        &self.db_inputs_plain[gi]
                    };
                    self.cross
                        .infer_pair(&self.cross_store, input, &ctx.input, scr, tmp);
                    data[gi * *dim..(gi + 1) * *dim].copy_from_slice(tmp);
                    present[gi] = true;
                }
            })
        });
    }

    /// The cross-graph pair embedding `h_G ‖ h_Q` for database graph `g`.
    /// `use_cg` selects the compressed database input (Definition 3).
    pub fn pair_embedding(&self, ctx: &QueryContext, g: u32, use_cg: bool) -> Vec<f32> {
        self.ensure_pairs(ctx, std::slice::from_ref(&g), use_cg);
        ctx.pair_cache.borrow().row(g).to_vec()
    }

    /// Tape-path twin of [`LanModels::pair_embedding`], kept as the bench
    /// baseline (and an in-situ equivalence anchor): same cache, but misses
    /// run the autograd forward.
    pub fn pair_embedding_tape(&self, ctx: &QueryContext, g: u32, use_cg: bool) -> Vec<f32> {
        {
            let slab = ctx.pair_cache.borrow();
            if slab.has(g) {
                return slab.row(g).to_vec();
            }
        }
        let gi = if use_cg {
            &self.db_inputs_cg[g as usize]
        } else {
            &self.db_inputs_plain[g as usize]
        };
        let mut tape = Tape::new();
        let out = self
            .cross
            .forward(&mut tape, &self.cross_store, gi, &ctx.input);
        let v = tape.value(out.h_pair).data().to_vec();
        let mut slab = ctx.pair_cache.borrow_mut();
        slab.ensure_capacity(self.db_embeds.len());
        slab.insert(g, &v);
        v
    }

    /// `M_nh` logit for database graph `g`.
    pub fn nh_logit(&self, ctx: &QueryContext, g: u32, use_cg: bool) -> f32 {
        self.ensure_pairs(ctx, std::slice::from_ref(&g), use_cg);
        let slab = ctx.pair_cache.borrow();
        ctx.gnn_timer.time(|| {
            RANK_SCRATCH.with(|rs| {
                self.nh_head
                    .infer_scalar(&self.cross_store, slab.row(g), &mut rs.borrow_mut().mlp)
            })
        })
    }

    /// The predicted neighborhood `N̂_Q` using the optimized cluster-based
    /// design (paper §V-B2): `M_c` scores every cluster, `M_nh` is applied
    /// only within the best `top_clusters`.
    pub fn predicted_neighborhood(&self, ctx: &QueryContext, use_cg: bool) -> Vec<u32> {
        let mut scored: Vec<(f32, usize)> = ctx.gnn_timer.time(|| {
            (0..self.kmeans.k())
                .map(|c| (self.mc_score(ctx, c), c))
                .collect()
        });
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let members = self.kmeans.members();
        let mut out = Vec::new();
        for &(_, c) in scored.iter().take(self.cfg.top_clusters) {
            for &g in &members[c] {
                if self.nh_logit(ctx, g, use_cg) > 0.0 {
                    out.push(g);
                }
            }
        }
        out
    }

    /// The basic (cluster-free) design of §V-B1: one `M_nh` prediction per
    /// database graph.
    pub fn predicted_neighborhood_basic(&self, ctx: &QueryContext, use_cg: bool) -> Vec<u32> {
        (0..self.db_embeds.len() as u32)
            .filter(|&g| self.nh_logit(ctx, g, use_cg) > 0.0)
            .collect()
    }

    /// `M_c`'s predicted (normalized) intersection of cluster `c` with N_Q.
    pub fn mc_score(&self, ctx: &QueryContext, c: usize) -> f32 {
        RANK_SCRATCH.with(|rs| {
            let rs = &mut *rs.borrow_mut();
            rs.input.clear();
            rs.input.extend_from_slice(&self.kmeans.centroids[c]);
            rs.input.extend_from_slice(&ctx.gin_embed);
            self.mc_head
                .infer_scalar(&self.mc_store, &rs.input, &mut rs.mlp)
        })
    }

    /// Ranker-driven batch partition of a node's neighbors (paper §IV-C).
    ///
    /// Inside the neighborhood (`d_node <= γ*`) each neighbor's predicted
    /// batch is the first ranker `i` that classifies it positive
    /// (cumulative-or repairs non-monotone heads); outside, pruning is
    /// disabled and all neighbors form one batch.
    pub fn rank_batches(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
    ) -> Vec<Vec<u32>> {
        self.rank_batches_mode(ctx, node, neighbors, d_node, use_cg, true)
    }

    /// [`LanModels::rank_batches`] scoring each neighbor as its own 1-row
    /// batch through the same fused kernels. Bit-identical to the batched
    /// path (each fused output row depends only on its own input row);
    /// exists so the equivalence property tests can pin that down.
    pub fn rank_batches_per_neighbor(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
    ) -> Vec<Vec<u32>> {
        self.rank_batches_mode(ctx, node, neighbors, d_node, use_cg, false)
    }

    fn rank_batches_mode(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
        batched: bool,
    ) -> Vec<Vec<u32>> {
        if neighbors.is_empty() {
            return Vec::new();
        }
        if d_node > self.gamma_star {
            return vec![neighbors.to_vec()];
        }
        let _s = span("gnn.rank");
        // Each M_rk^i answers "is this neighbor in the top i·y%?". Summing
        // the sigmoid scores gives the expected number of top-sets the
        // neighbor belongs to — a monotone rank score that is far more
        // robust than the heads' individual 0.5-calibration. Neighbors are
        // sorted by that score and chunked into the y% batches of
        // Algorithm 4, exactly like the oracle ranker but with the learned
        // score in place of the true distance.
        self.ensure_pairs(ctx, neighbors, use_cg);
        let slab = ctx.pair_cache.borrow();
        let h_g = &self.db_embeds[node as usize];
        let dim = rk_feature_dim(self.cfg.embed_dim);
        let mut scored: Vec<(f32, u32)> = RANK_SCRATCH.with(|rs| {
            let rs = &mut *rs.borrow_mut();
            ctx.gnn_timer.time(|| {
                if batched {
                    // One stacked feature matrix, one fused matmul for the
                    // whole hop.
                    rs.feats.reset(neighbors.len(), dim);
                    for (i, &nb) in neighbors.iter().enumerate() {
                        rk_feature_into(
                            rs.feats.row_mut(i),
                            slab.row(nb),
                            h_g,
                            &ctx.gin_embed,
                            &self.db_embeds[nb as usize],
                        );
                    }
                    self.rk_fused
                        .score_into(&rs.feats, &mut rs.hidden, &mut rs.logits);
                    neighbors
                        .iter()
                        .enumerate()
                        .map(|(i, &nb)| {
                            let mut score = 0.0f32;
                            for hd in 0..self.rk_fused.num_heads {
                                score += sigmoid(rs.logits.get(i, hd));
                            }
                            (score, nb)
                        })
                        .collect()
                } else {
                    neighbors
                        .iter()
                        .map(|&nb| {
                            rs.feats.reset(1, dim);
                            rk_feature_into(
                                rs.feats.row_mut(0),
                                slab.row(nb),
                                h_g,
                                &ctx.gin_embed,
                                &self.db_embeds[nb as usize],
                            );
                            self.rk_fused
                                .score_into(&rs.feats, &mut rs.hidden, &mut rs.logits);
                            let mut score = 0.0f32;
                            for hd in 0..self.rk_fused.num_heads {
                                score += sigmoid(rs.logits.get(0, hd));
                            }
                            (score, nb)
                        })
                        .collect()
                }
            })
        });
        sort_scored_desc(&mut scored);
        let ranked: Vec<u32> = scored.into_iter().map(|(_, nb)| nb).collect();
        lan_pg::np_route::chunk_batches(ranked, self.cfg.batch_pct)
    }

    /// [`LanModels::rank_batches`] routed through a shard-shared
    /// [`FusedScoreService`]: the hop's stacked feature rows are submitted
    /// to the combining funnel, which may fuse them with co-batched
    /// queries' rows into one `FusedHeads` matmul. Scores, ordering, and
    /// the resulting batches are bit-identical to `rank_batches` (the
    /// funnel preserves row order and uses the same per-row reduction).
    pub fn rank_batches_shared(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
        svc: &FusedScoreService,
    ) -> Vec<Vec<u32>> {
        if neighbors.is_empty() {
            return Vec::new();
        }
        if d_node > self.gamma_star {
            return vec![neighbors.to_vec()];
        }
        let _s = span("gnn.rank");
        self.ensure_pairs(ctx, neighbors, use_cg);
        let slab = ctx.pair_cache.borrow();
        let h_g = &self.db_embeds[node as usize];
        let dim = rk_feature_dim(self.cfg.embed_dim);
        let feats = ctx.gnn_timer.time(|| {
            let mut feats = vec![0.0f32; neighbors.len() * dim];
            for (i, &nb) in neighbors.iter().enumerate() {
                rk_feature_into(
                    &mut feats[i * dim..(i + 1) * dim],
                    slab.row(nb),
                    h_g,
                    &ctx.gin_embed,
                    &self.db_embeds[nb as usize],
                );
            }
            feats
        });
        drop(slab);
        // The funnel blocks while sibling queries' rows ride along; only
        // the feature build above counts toward this query's GNN time (the
        // shared matmul's cost is not attributable to one query).
        let scores = svc.score(&self.rk_fused, dim, feats);
        let mut scored: Vec<(f32, u32)> =
            scores.into_iter().zip(neighbors.iter().copied()).collect();
        sort_scored_desc(&mut scored);
        let ranked: Vec<u32> = scored.into_iter().map(|(_, nb)| nb).collect();
        lan_pg::np_route::chunk_batches(ranked, self.cfg.batch_pct)
    }

    /// The pre-fast-path implementation — per-neighbor autograd tapes for
    /// the pair embedding and one fresh tape per ranker head — kept as the
    /// bench baseline (`bench/gnn_inference` measures the speedup of
    /// [`LanModels::rank_batches`] over this).
    pub fn rank_batches_tape(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
    ) -> Vec<Vec<u32>> {
        if neighbors.is_empty() {
            return Vec::new();
        }
        if d_node > self.gamma_star {
            return vec![neighbors.to_vec()];
        }
        let mut scored: Vec<(f32, u32)> = Vec::with_capacity(neighbors.len());
        for &nb in neighbors {
            let pair = self.pair_embedding_tape(ctx, nb, use_cg);
            let feat = rk_feature(
                &pair,
                &self.db_embeds[node as usize],
                &ctx.gin_embed,
                &self.db_embeds[nb as usize],
            );
            let mut score = 0.0f32;
            for head in &self.rk_heads {
                let mut tape = Tape::new();
                let x = tape.leaf(Matrix::from_vec(1, feat.len(), feat.clone()));
                let logit = head.forward(&mut tape, &self.rk_store, x);
                score += sigmoid(tape.value(logit).scalar());
            }
            scored.push((score, nb));
        }
        sort_scored_desc(&mut scored);
        let ranked: Vec<u32> = scored.into_iter().map(|(_, nb)| nb).collect();
        lan_pg::np_route::chunk_batches(ranked, self.cfg.batch_pct)
    }

    /// `M_nh` precision/recall over the given query indices (Fig. 8).
    /// Queries are evaluated in parallel — each one's prediction and GED
    /// ground-truth scan are independent, and the summed counts are
    /// order-free, so the result is identical to a sequential evaluation.
    pub fn nh_precision_on(&self, dataset: &Dataset, query_idx: &[usize]) -> (f64, f64) {
        let counts: Vec<(usize, usize, usize)> =
            lan_par::par_map_dyn(query_idx, lan_par::Grain::Fine, |&qi| {
                let q = &dataset.queries[qi];
                let ctx = self.query_context(q, true);
                let pred = self.predicted_neighborhood_basic(&ctx, true);
                let pred_set: std::collections::HashSet<u32> = pred.iter().copied().collect();
                let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
                for g in 0..dataset.graphs.len() as u32 {
                    let truth = dataset.distance(q, g) <= self.gamma_star;
                    let predicted = pred_set.contains(&g);
                    match (truth, predicted) {
                        (true, true) => tp += 1,
                        (false, true) => fp += 1,
                        (true, false) => fn_ += 1,
                        (false, false) => {}
                    }
                }
                (tp, fp, fn_)
            });
        let (tp, fp, fn_) = counts
            .into_iter()
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        (precision, recall)
    }
}

fn train_embedder(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gin: &Gin,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) {
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    let nq = train_dists.len();
    if nq == 0 {
        return;
    }
    let ng = dataset.graphs.len();
    for epoch in 0..cfg.epochs as u32 {
        adam.lr = schedule.lr_at(epoch);
        let samples = cfg.max_samples_per_epoch.min(nq * 8).max(16);
        for _ in 0..samples {
            let qi = rng.gen_range(0..nq);
            let gi = rng.gen_range(0..ng);
            let d = train_dists[qi][gi] as f32;
            let q = &dataset.queries[dataset.split.train[qi]];
            let g = &dataset.graphs[gi];
            store.zero_grads();
            let mut tape = Tape::new();
            let (_, eq) = gin.forward(&mut tape, store, q);
            let (_, eg) = gin.forward(&mut tape, store, g);
            let diff = tape.sub(eq, eg);
            let msd = tape.mse(diff, Matrix::zeros(1, cfg.embed_dim));
            let pred = tape.scale(msd, cfg.embed_dim as f32); // squared L2
            let loss = tape.mse(pred, Matrix::from_vec(1, 1, vec![d]));
            tape.backward(loss, store);
            adam.step(store);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn train_nh(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    cross: &CrossGraphNet,
    nh_head: &Mlp,
    dist_head: &Mlp,
    store: &mut ParamStore,
    db_inputs: &[CrossInput],
    gcfg: &GnnConfig,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) -> f32 {
    // Build (query, graph, label, distance) samples with negative
    // downsampling [50]. The distance target drives the auxiliary
    // regression head: the binary in/out-of-N_Q objective alone is too
    // coarse for the encoder the rankers reuse, so the encoder is also
    // asked to predict the (gamma*-normalized) distance itself.
    let mut samples: Vec<(usize, u32, f32, f32)> = Vec::new();
    for (qi, dists) in train_dists.iter().enumerate() {
        let positives: Vec<u32> = (0..dists.len() as u32)
            .filter(|&g| dists[g as usize] <= gamma_star)
            .collect();
        let num_neg = (positives.len() * 3).max(8).min(dists.len());
        for &g in &positives {
            samples.push((qi, g, 1.0, dists[g as usize] as f32));
        }
        for _ in 0..num_neg {
            let g = rng.gen_range(0..dists.len()) as u32;
            if dists[g as usize] > gamma_star {
                samples.push((qi, g, 0.0, dists[g as usize] as f32));
            }
        }
    }
    if samples.is_empty() {
        return 0.0;
    }
    let q_inputs: Vec<CrossInput> = train_dists
        .iter()
        .enumerate()
        .map(|(qi, _)| CrossInput::plain(&dataset.queries[dataset.split.train[qi]], gcfg))
        .collect();

    let gs = gamma_star.max(1.0) as f32;
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    let mut last_loss = 0.0f32;
    for epoch in 0..cfg.epochs as u32 {
        adam.lr = schedule.lr_at(epoch);
        samples.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for &(qi, g, label, d) in samples.iter().take(cfg.max_samples_per_epoch) {
            store.zero_grads();
            let mut tape = Tape::new();
            let out = cross.forward(&mut tape, store, &db_inputs[g as usize], &q_inputs[qi]);
            let logit = nh_head.forward(&mut tape, store, out.h_pair);
            let loss = tape.bce_with_logits(logit, label);
            let pred_d = dist_head.forward(&mut tape, store, out.h_pair);
            let reg = tape.mse(pred_d, Matrix::from_vec(1, 1, vec![d / gs]));
            let reg_s = tape.scale(reg, 0.5);
            let joint = tape.add(loss, reg_s);
            total += tape.value(loss).scalar();
            count += 1;
            tape.backward(joint, store);
            adam.step(store);
        }
        last_loss = total / count.max(1) as f32;
    }
    last_loss
}

#[allow(clippy::too_many_arguments)]
fn train_rk(
    dataset: &Dataset,
    adj: &[Vec<u32>],
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    cross: &CrossGraphNet,
    cross_store: &ParamStore,
    db_inputs: &[CrossInput],
    db_embeds: &[Vec<f32>],
    gin: &Gin,
    gin_store: &ParamStore,
    rk_heads: &[Mlp],
    rk_store: &mut ParamStore,
    gcfg: &GnnConfig,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) -> f32 {
    // Training states: (Q, G in N_Q, neighbor G') with the neighbor's rank
    // among G's neighbors by distance to Q (paper §IV-C: the reduced
    // training set restricted to the neighborhood of Q).
    struct RkSample {
        feat: Vec<f32>,
        /// Rank position of the neighbor (0-based) and neighbor count.
        rank: usize,
        total: usize,
    }
    let mut samples: Vec<RkSample> = Vec::new();
    let max_states_per_query = 24;
    for (qi, dists) in train_dists.iter().enumerate() {
        let query = &dataset.queries[dataset.split.train[qi]];
        let q_input = CrossInput::plain(query, gcfg);
        let q_gin = gin.embed(gin_store, query).data().to_vec();
        let mut in_nq: Vec<u32> = (0..dists.len() as u32)
            .filter(|&g| dists[g as usize] <= gamma_star)
            .collect();
        in_nq.shuffle(rng);
        for &g in in_nq.iter().take(max_states_per_query) {
            let neighbors = &adj[g as usize];
            if neighbors.is_empty() {
                continue;
            }
            let mut ranked: Vec<u32> = neighbors.clone();
            ranked.sort_by(|&a, &b| {
                dists[a as usize]
                    .partial_cmp(&dists[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            // Pair embeddings come from the frozen encoder, so every
            // neighbor's feature is independent — build them in parallel,
            // order-preserving (rank = position in `ranked`).
            samples.extend(lan_par::par_map_indices_dyn(
                ranked.len(),
                lan_par::Grain::Auto,
                |rank| {
                    let nb = ranked[rank];
                    let mut tape = Tape::new();
                    let out =
                        cross.forward(&mut tape, cross_store, &db_inputs[nb as usize], &q_input);
                    let pair = tape.value(out.h_pair).data().to_vec();
                    let feat = rk_feature(
                        &pair,
                        &db_embeds[g as usize],
                        &q_gin,
                        &db_embeds[nb as usize],
                    );
                    RkSample {
                        feat,
                        rank,
                        total: ranked.len(),
                    }
                },
            ));
        }
    }
    if samples.is_empty() {
        return 0.0;
    }

    let schedule = StepDecay::paper();
    let mut last = 0.0f32;
    // Heads are cheap (features are cached), so give them a much larger
    // budget than the encoder.
    let mut adam = Adam::new(schedule.initial_lr);
    for epoch in 0..(cfg.epochs as u32 * 6) {
        adam.lr = schedule.lr_at(epoch);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for &si in order.iter().take(cfg.max_samples_per_epoch * 4) {
            let s = &samples[si];
            rk_store.zero_grads();
            for (i, head) in rk_heads.iter().enumerate() {
                // Positive iff the neighbor is among the top (i+1)·y% ranks.
                let top = (((i + 1) * cfg.batch_pct * s.total) as f64 / 100.0).ceil() as usize;
                let label = if s.rank < top.max(1) { 1.0 } else { 0.0 };
                let mut tape = Tape::new();
                let x = tape.leaf(Matrix::from_vec(1, s.feat.len(), s.feat.clone()));
                let logit = head.forward(&mut tape, rk_store, x);
                let loss = tape.bce_with_logits(logit, label);
                total += tape.value(loss).scalar();
                count += 1;
                tape.backward(loss, rk_store);
            }
            adam.step(rk_store);
        }
        last = total / count.max(1) as f32;
    }
    last
}

#[allow(clippy::too_many_arguments)]
fn train_mc(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    kmeans: &KMeans,
    _db_embeds: &[Vec<f32>],
    gin: &Gin,
    gin_store: &ParamStore,
    mc_head: &Mlp,
    mc_store: &mut ParamStore,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) {
    let members = kmeans.members();
    struct McSample {
        input: Vec<f32>,
        target: f32,
    }
    let mut samples: Vec<McSample> = Vec::new();
    for (qi, dists) in train_dists.iter().enumerate() {
        let q = &dataset.queries[dataset.split.train[qi]];
        let qe = gin.embed(gin_store, q).data().to_vec();
        for (c, ms) in members.iter().enumerate() {
            if ms.is_empty() {
                continue;
            }
            let inter = ms
                .iter()
                .filter(|&&g| dists[g as usize] <= gamma_star)
                .count();
            let target = inter as f32 / ms.len() as f32;
            let mut input = kmeans.centroids[c].clone();
            input.extend_from_slice(&qe);
            samples.push(McSample { input, target });
        }
    }
    if samples.is_empty() {
        return;
    }
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    for epoch in 0..(cfg.epochs as u32 * 4) {
        adam.lr = schedule.lr_at(epoch);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        for &si in order.iter().take(cfg.max_samples_per_epoch) {
            let s = &samples[si];
            mc_store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::from_vec(1, s.input.len(), s.input.clone()));
            let out = mc_head.forward(&mut tape, mc_store, x);
            let loss = tape.mse(out, Matrix::from_vec(1, 1, vec![s.target]));
            tape.backward(loss, mc_store);
            adam.step(mc_store);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_scored_desc_is_nan_safe_and_deterministic() {
        // Regression for the old `partial_cmp(..).unwrap_or(Equal)` sort: a
        // NaN score must neither panic nor scramble the order depending on
        // input permutation.
        let mut a = vec![(f32::NAN, 3), (1.0, 1), (f32::NAN, 2), (0.5, 4)];
        let mut b = vec![(0.5, 4), (f32::NAN, 2), (1.0, 1), (f32::NAN, 3)];
        sort_scored_desc(&mut a);
        sort_scored_desc(&mut b);
        // Compare bit patterns: `==` on NaN floats is always false.
        let bits = |v: &[(f32, u32)]| -> Vec<(u32, u32)> {
            v.iter().map(|&(s, id)| (s.to_bits(), id)).collect()
        };
        assert_eq!(
            bits(&a),
            bits(&b),
            "sort must be permutation-invariant with NaNs"
        );
        // NaN sorts ahead of every finite score under descending total_cmp,
        // with the id tiebreak keeping equal scores deterministic.
        let ids: Vec<u32> = a.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![2, 3, 1, 4]);
    }

    #[test]
    fn sort_scored_desc_ties_break_by_id() {
        let mut v = vec![(1.0f32, 9), (1.0, 2), (1.0, 5)];
        sort_scored_desc(&mut v);
        let ids: Vec<u32> = v.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn rk_feature_into_matches_rk_feature() {
        let pair = [0.1f32, -0.4, 0.0, 2.0];
        let h_g = [1.0f32, 0.5];
        let q_gin = [0.2f32, -1.0];
        let nb_gin = [0.1f32, 0.7];
        let want = rk_feature(&pair, &h_g, &q_gin, &nb_gin);
        let mut got = vec![0.0f32; want.len()];
        rk_feature_into(&mut got, &pair, &h_g, &q_gin, &nb_gin);
        assert_eq!(got, want);
    }
}
