//! The learned components of LAN and their training pipelines.
//!
//! * the **GIN graph embedder** (node2vec substitute, see DESIGN.md) trained
//!   as a Siamese distance regressor — its embeddings drive KMeans
//!   clustering, the cluster model `M_c`, and the L2route baseline;
//! * the **cross-graph encoder** shared by the neighborhood model and the
//!   neighbor rankers;
//! * **`M_nh`** (paper §V-B1): cross-graph embedding `h_{G,Q}` → MLP →
//!   "is G in N_Q?", trained with negative downsampling;
//! * **`M_c`** (paper §V-B2): per-cluster intersection-size regressor;
//! * **`M_rk^i`** (paper §IV-C): `100/y` binary rankers over
//!   `h_{G',Q} ‖ h_G`, trained only on routing states inside the query
//!   neighborhood, with heads trained on cached pair embeddings from the
//!   frozen encoder (an engineering simplification documented in
//!   DESIGN.md).

use crate::kmeans::KMeans;
use lan_datasets::Dataset;
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, Gin, GnnConfig};
use lan_graph::Graph;
use lan_tensor::{sigmoid, Adam, Matrix, Mlp, ParamStore, StepDecay, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Hyperparameters for model training and inference.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// GNN embedding dimension (paper: 128; scaled default 32).
    pub embed_dim: usize,
    /// GNN layer count `L`.
    pub layers: usize,
    /// The batch parameter `y` in percent (paper: 20 → 5 rankers).
    pub batch_pct: usize,
    /// γ\* is set so `N_Q` covers this many NNs... (paper: 200)
    pub nh_cover_k: usize,
    /// ...for this fraction of training queries (paper: 0.9).
    pub nh_cover_quantile: f64,
    /// Training epochs (paper: 1,000 on a V100S; scaled default).
    pub epochs: usize,
    /// Cap on training samples visited per epoch.
    pub max_samples_per_epoch: usize,
    /// KMeans cluster count for the optimized `M_nh` design.
    pub clusters: usize,
    /// Clusters retained by `M_c` at query time.
    pub top_clusters: usize,
    /// Hidden width of the MLP heads.
    pub mlp_hidden: usize,
    /// `s`: samples drawn from the predicted neighborhood (paper: 4).
    pub init_samples: usize,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            embed_dim: 32,
            layers: 2,
            batch_pct: 20,
            nh_cover_k: 200,
            nh_cover_quantile: 0.9,
            epochs: 6,
            max_samples_per_epoch: 1200,
            clusters: 8,
            top_clusters: 3,
            mlp_hidden: 32,
            init_samples: 4,
            seed: 0xCAFE,
        }
    }
}

/// Builds the ranker input feature for one neighbor: the paper's
/// `h_{G',Q} ‖ h_G`, augmented with the Siamese-GIN distance signal
/// (elementwise squared difference between the query and neighbor GIN
/// embeddings plus its sum, i.e. the embedder's distance estimate). The
/// GIN embedder is trained as a distance regressor, so this injects an
/// explicit learned-distance feature the binary rankers can threshold.
pub(crate) fn rk_feature(pair: &[f32], h_g: &[f32], q_gin: &[f32], nb_gin: &[f32]) -> Vec<f32> {
    let mut feat = Vec::with_capacity(pair.len() + h_g.len() + nb_gin.len() + 1);
    feat.extend_from_slice(pair);
    feat.extend_from_slice(h_g);
    let mut total = 0.0f32;
    for (a, b) in q_gin.iter().zip(nb_gin) {
        let d2 = (a - b) * (a - b);
        feat.push(d2);
        total += d2;
    }
    feat.push(total);
    feat
}

/// Input dimension of [`rk_feature`] given the embedding dim.
pub(crate) fn rk_feature_dim(embed_dim: usize) -> usize {
    4 * embed_dim + 1
}

/// Accumulates time spent inside GNN inference (for the Fig. 11 breakdown).
///
/// Keyed per thread so parallel query batches sharing one `LanModels` keep
/// independent per-query accounting: a query runs `reset` → inference →
/// `total` entirely on its worker thread, so concurrent queries never see
/// each other's time. (A query's own GNN calls all happen on its thread —
/// the intra-query parallel sections only evaluate GED distances.)
#[derive(Debug, Default)]
pub struct GnnTimer {
    per_thread: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, Duration>>,
}

impl GnnTimer {
    pub fn add(&self, d: Duration) {
        let mut map = self.per_thread.lock().unwrap();
        *map.entry(std::thread::current().id()).or_default() += d;
    }

    /// Time accumulated on the calling thread since its last `reset`.
    pub fn total(&self) -> Duration {
        let map = self.per_thread.lock().unwrap();
        map.get(&std::thread::current().id())
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Clears the calling thread's accumulator only.
    pub fn reset(&self) {
        let mut map = self.per_thread.lock().unwrap();
        map.remove(&std::thread::current().id());
    }
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// γ\* chosen by the covering rule.
    pub gamma_star: f64,
    /// `M_nh` precision on the validation queries (Fig. 8's metric).
    pub nh_precision: f64,
    /// `M_nh` recall on the validation queries.
    pub nh_recall: f64,
    /// Final `M_nh` training loss.
    pub nh_loss: f32,
    /// Final mean ranker training loss.
    pub rk_loss: f32,
}

/// The trained LAN model bundle plus precomputed database artifacts.
pub struct LanModels {
    pub cfg: ModelConfig,
    pub num_labels: usize,
    pub gin: Gin,
    pub gin_store: ParamStore,
    pub cross: CrossGraphNet,
    pub cross_store: ParamStore,
    pub nh_head: Mlp,
    pub rk_heads: Vec<Mlp>,
    pub rk_store: ParamStore,
    pub mc_head: Mlp,
    pub mc_store: ParamStore,
    pub kmeans: KMeans,
    pub gamma_star: f64,
    /// GIN embedding of every database graph.
    pub db_embeds: Vec<Vec<f32>>,
    /// Precomputed compressed GNN-graphs of the database (paper §VI-C).
    pub db_cgs: Vec<CompressedGnnGraph>,
    /// Cross-graph inputs, compressed and plain, per database graph.
    pub db_inputs_cg: Vec<CrossInput>,
    pub db_inputs_plain: Vec<CrossInput>,
    /// Wall-clock spent in GNN inference since the last reset.
    pub gnn_timer: GnnTimer,
}

/// A query's precomputed learning context (built once per query).
pub struct QueryContext {
    pub input: CrossInput,
    pub gin_embed: Vec<f32>,
    /// Per-query memo of pair embeddings `h_G ‖ h_Q` by database graph id:
    /// the initial-node selection (`M_nh`) and the neighbor rankers
    /// (`M_rk`) share one encoder, and proximity-graph neighborhoods
    /// overlap, so each database graph is embedded against the query at
    /// most once.
    pair_cache: RefCell<std::collections::HashMap<u32, Vec<f32>>>,
}

impl LanModels {
    /// Number of rankers `100 / y`.
    pub fn num_rankers(cfg: &ModelConfig) -> usize {
        (100 / cfg.batch_pct).max(1)
    }

    /// Trains all models on the dataset's training queries, given the
    /// proximity-graph base adjacency (needed for ranker labels).
    ///
    /// `train_dists[qi][g]` must hold the operational distance from
    /// training query `qi` (indexing `dataset.split.train`) to every
    /// database graph `g` — computed once by the caller and shared across
    /// all label builders.
    pub fn train(
        dataset: &Dataset,
        adj: &[Vec<u32>],
        train_dists: &[Vec<f64>],
        cfg: ModelConfig,
    ) -> (Self, TrainReport) {
        assert_eq!(train_dists.len(), dataset.split.train.len());
        let num_labels = dataset.spec.num_labels as usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let gcfg = GnnConfig::uniform(num_labels, cfg.embed_dim, cfg.layers);

        // --- γ*: the paper's covering rule. ---
        let cover_k = cfg
            .nh_cover_k
            .min(dataset.graphs.len().saturating_sub(1))
            .max(1);
        let mut kth: Vec<f64> = train_dists
            .iter()
            .map(|ds| {
                let mut v = ds.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                v[cover_k - 1]
            })
            .collect();
        kth.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let qi = ((kth.len() as f64 - 1.0) * cfg.nh_cover_quantile).round() as usize;
        let gamma_star = kth[qi.min(kth.len() - 1)];

        // --- GIN embedder: Siamese squared-L2 distance regression. ---
        let mut gin_store = ParamStore::new();
        let gin = Gin::new(&mut rng, &mut gin_store, gcfg.clone());
        train_embedder(dataset, train_dists, &gin, &mut gin_store, &cfg, &mut rng);
        let db_embeds: Vec<Vec<f32>> = lan_par::par_map(&dataset.graphs, |g| {
            gin.embed(&gin_store, g).data().to_vec()
        });

        // --- KMeans over embeddings. ---
        let kmeans = KMeans::fit(&db_embeds, cfg.clusters, 50, cfg.seed ^ 0x5eed);

        // --- M_nh: cross encoder + head, negative downsampling. ---
        let mut cross_store = ParamStore::new();
        let cross = CrossGraphNet::new(&mut rng, &mut cross_store, gcfg.clone());
        let nh_head = Mlp::new(
            &mut rng,
            &mut cross_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        let dist_head = Mlp::new(
            &mut rng,
            &mut cross_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        let db_inputs_plain: Vec<CrossInput> =
            lan_par::par_map(&dataset.graphs, |g| CrossInput::plain(g, &gcfg));
        let nh_loss = train_nh(
            dataset,
            train_dists,
            gamma_star,
            &cross,
            &nh_head,
            &dist_head,
            &mut cross_store,
            &db_inputs_plain,
            &gcfg,
            &cfg,
            &mut rng,
        );

        // --- M_rk heads on frozen-encoder pair embeddings. ---
        let mut rk_store = ParamStore::new();
        let nr = Self::num_rankers(&cfg);
        let rk_heads: Vec<Mlp> = (0..nr)
            .map(|_| {
                Mlp::new(
                    &mut rng,
                    &mut rk_store,
                    &[rk_feature_dim(cfg.embed_dim), cfg.mlp_hidden, 1],
                )
            })
            .collect();
        let rk_loss = train_rk(
            dataset,
            adj,
            train_dists,
            gamma_star,
            &cross,
            &cross_store,
            &db_inputs_plain,
            &db_embeds,
            &gin,
            &gin_store,
            &rk_heads,
            &mut rk_store,
            &gcfg,
            &cfg,
            &mut rng,
        );

        // --- M_c: per-cluster intersection-size regression. ---
        let mut mc_store = ParamStore::new();
        let mc_head = Mlp::new(
            &mut rng,
            &mut mc_store,
            &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
        );
        train_mc(
            dataset,
            train_dists,
            gamma_star,
            &kmeans,
            &db_embeds,
            &gin,
            &gin_store,
            &mc_head,
            &mut mc_store,
            &cfg,
            &mut rng,
        );

        // --- Precompute database CGs (paper §VI-C: one-off). ---
        let db_cgs: Vec<CompressedGnnGraph> = lan_par::par_map(&dataset.graphs, |g| {
            CompressedGnnGraph::build(g, cfg.layers)
        });
        let db_inputs_cg: Vec<CrossInput> =
            lan_par::par_map(&db_cgs, |cg| CrossInput::compressed(cg, &gcfg));

        let models = LanModels {
            cfg,
            num_labels,
            gin,
            gin_store,
            cross,
            cross_store,
            nh_head,
            rk_heads,
            rk_store,
            mc_head,
            mc_store,
            kmeans,
            gamma_star,
            db_embeds,
            db_cgs,
            db_inputs_cg,
            db_inputs_plain,
            gnn_timer: GnnTimer::default(),
        };

        // --- Validation precision of M_nh (Fig. 8). ---
        let (nh_precision, nh_recall) = models.nh_precision_on(dataset, &dataset.split.val);

        let report = TrainReport {
            gamma_star,
            nh_precision,
            nh_recall,
            nh_loss,
            rk_loss,
        };
        (models, report)
    }

    /// GNN config used by all networks.
    pub fn gnn_config(&self) -> GnnConfig {
        GnnConfig::uniform(self.num_labels, self.cfg.embed_dim, self.cfg.layers)
    }

    /// GIN embedding of an arbitrary graph.
    pub fn embed(&self, g: &Graph) -> Vec<f32> {
        self.gin.embed(&self.gin_store, g).data().to_vec()
    }

    /// Builds the query's learning context. With `use_cg` the query's
    /// compressed GNN-graph is built once here (the paper's on-the-fly,
    /// one-off CG cost).
    pub fn query_context(&self, q: &Graph, use_cg: bool) -> QueryContext {
        let t0 = Instant::now();
        let gcfg = self.gnn_config();
        let input = if use_cg {
            let cg = CompressedGnnGraph::build(q, self.cfg.layers);
            CrossInput::compressed(&cg, &gcfg)
        } else {
            CrossInput::plain(q, &gcfg)
        };
        let gin_embed = self.embed(q);
        self.gnn_timer.add(t0.elapsed());
        QueryContext {
            input,
            gin_embed,
            pair_cache: RefCell::new(Default::default()),
        }
    }

    /// The cross-graph pair embedding `h_G ‖ h_Q` for database graph `g`.
    /// `use_cg` selects the compressed database input (Definition 3).
    pub fn pair_embedding(&self, ctx: &QueryContext, g: u32, use_cg: bool) -> Vec<f32> {
        if let Some(v) = ctx.pair_cache.borrow().get(&g) {
            return v.clone();
        }
        let t0 = Instant::now();
        let gi = if use_cg {
            &self.db_inputs_cg[g as usize]
        } else {
            &self.db_inputs_plain[g as usize]
        };
        let mut tape = Tape::new();
        let out = self
            .cross
            .forward(&mut tape, &self.cross_store, gi, &ctx.input);
        let v = tape.value(out.h_pair).data().to_vec();
        self.gnn_timer.add(t0.elapsed());
        ctx.pair_cache.borrow_mut().insert(g, v.clone());
        v
    }

    /// `M_nh` logit for database graph `g`.
    pub fn nh_logit(&self, ctx: &QueryContext, g: u32, use_cg: bool) -> f32 {
        let pair = self.pair_embedding(ctx, g, use_cg);
        let t0 = Instant::now();
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, pair.len(), pair));
        let logit = self.nh_head.forward(&mut tape, &self.cross_store, x);
        let z = tape.value(logit).scalar();
        self.gnn_timer.add(t0.elapsed());
        z
    }

    /// The predicted neighborhood `N̂_Q` using the optimized cluster-based
    /// design (paper §V-B2): `M_c` scores every cluster, `M_nh` is applied
    /// only within the best `top_clusters`.
    pub fn predicted_neighborhood(&self, ctx: &QueryContext, use_cg: bool) -> Vec<u32> {
        let t0 = Instant::now();
        let mut scored: Vec<(f32, usize)> = (0..self.kmeans.k())
            .map(|c| (self.mc_score(ctx, c), c))
            .collect();
        self.gnn_timer.add(t0.elapsed());
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let members = self.kmeans.members();
        let mut out = Vec::new();
        for &(_, c) in scored.iter().take(self.cfg.top_clusters) {
            for &g in &members[c] {
                if self.nh_logit(ctx, g, use_cg) > 0.0 {
                    out.push(g);
                }
            }
        }
        out
    }

    /// The basic (cluster-free) design of §V-B1: one `M_nh` prediction per
    /// database graph.
    pub fn predicted_neighborhood_basic(&self, ctx: &QueryContext, use_cg: bool) -> Vec<u32> {
        (0..self.db_embeds.len() as u32)
            .filter(|&g| self.nh_logit(ctx, g, use_cg) > 0.0)
            .collect()
    }

    /// `M_c`'s predicted (normalized) intersection of cluster `c` with N_Q.
    pub fn mc_score(&self, ctx: &QueryContext, c: usize) -> f32 {
        let centroid = &self.kmeans.centroids[c];
        let mut input = centroid.clone();
        input.extend_from_slice(&ctx.gin_embed);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, input.len(), input));
        let out = self.mc_head.forward(&mut tape, &self.mc_store, x);
        tape.value(out).scalar()
    }

    /// Ranker-driven batch partition of a node's neighbors (paper §IV-C).
    ///
    /// Inside the neighborhood (`d_node <= γ*`) each neighbor's predicted
    /// batch is the first ranker `i` that classifies it positive
    /// (cumulative-or repairs non-monotone heads); outside, pruning is
    /// disabled and all neighbors form one batch.
    pub fn rank_batches(
        &self,
        ctx: &QueryContext,
        node: u32,
        neighbors: &[u32],
        d_node: f64,
        use_cg: bool,
    ) -> Vec<Vec<u32>> {
        if neighbors.is_empty() {
            return Vec::new();
        }
        if d_node > self.gamma_star {
            return vec![neighbors.to_vec()];
        }
        // Each M_rk^i answers "is this neighbor in the top i·y%?". Summing
        // the sigmoid scores gives the expected number of top-sets the
        // neighbor belongs to — a monotone rank score that is far more
        // robust than the heads' individual 0.5-calibration. Neighbors are
        // sorted by that score and chunked into the y% batches of
        // Algorithm 4, exactly like the oracle ranker but with the learned
        // score in place of the true distance.
        let mut scored: Vec<(f32, u32)> = Vec::with_capacity(neighbors.len());
        for &nb in neighbors {
            let pair = self.pair_embedding(ctx, nb, use_cg);
            let t0 = Instant::now();
            let feat = rk_feature(
                &pair,
                &self.db_embeds[node as usize],
                &ctx.gin_embed,
                &self.db_embeds[nb as usize],
            );
            let mut score = 0.0f32;
            for head in &self.rk_heads {
                let mut tape = Tape::new();
                let x = tape.leaf(Matrix::from_vec(1, feat.len(), feat.clone()));
                let logit = head.forward(&mut tape, &self.rk_store, x);
                score += sigmoid(tape.value(logit).scalar());
            }
            self.gnn_timer.add(t0.elapsed());
            scored.push((score, nb));
        }
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let ranked: Vec<u32> = scored.into_iter().map(|(_, nb)| nb).collect();
        lan_pg::np_route::chunk_batches(ranked, self.cfg.batch_pct)
    }

    /// `M_nh` precision/recall over the given query indices (Fig. 8).
    /// Queries are evaluated in parallel — each one's prediction and GED
    /// ground-truth scan are independent, and the summed counts are
    /// order-free, so the result is identical to a sequential evaluation.
    pub fn nh_precision_on(&self, dataset: &Dataset, query_idx: &[usize]) -> (f64, f64) {
        let counts: Vec<(usize, usize, usize)> = lan_par::par_map(query_idx, |&qi| {
            let q = &dataset.queries[qi];
            let ctx = self.query_context(q, true);
            let pred = self.predicted_neighborhood_basic(&ctx, true);
            let pred_set: std::collections::HashSet<u32> = pred.iter().copied().collect();
            let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
            for g in 0..dataset.graphs.len() as u32 {
                let truth = dataset.distance(q, g) <= self.gamma_star;
                let predicted = pred_set.contains(&g);
                match (truth, predicted) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fn_ += 1,
                    (false, false) => {}
                }
            }
            (tp, fp, fn_)
        });
        let (tp, fp, fn_) = counts
            .into_iter()
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        (precision, recall)
    }
}

fn train_embedder(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gin: &Gin,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) {
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    let nq = train_dists.len();
    if nq == 0 {
        return;
    }
    let ng = dataset.graphs.len();
    for epoch in 0..cfg.epochs as u32 {
        adam.lr = schedule.lr_at(epoch);
        let samples = cfg.max_samples_per_epoch.min(nq * 8).max(16);
        for _ in 0..samples {
            let qi = rng.gen_range(0..nq);
            let gi = rng.gen_range(0..ng);
            let d = train_dists[qi][gi] as f32;
            let q = &dataset.queries[dataset.split.train[qi]];
            let g = &dataset.graphs[gi];
            store.zero_grads();
            let mut tape = Tape::new();
            let (_, eq) = gin.forward(&mut tape, store, q);
            let (_, eg) = gin.forward(&mut tape, store, g);
            let diff = tape.sub(eq, eg);
            let msd = tape.mse(diff, Matrix::zeros(1, cfg.embed_dim));
            let pred = tape.scale(msd, cfg.embed_dim as f32); // squared L2
            let loss = tape.mse(pred, Matrix::from_vec(1, 1, vec![d]));
            tape.backward(loss, store);
            adam.step(store);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn train_nh(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    cross: &CrossGraphNet,
    nh_head: &Mlp,
    dist_head: &Mlp,
    store: &mut ParamStore,
    db_inputs: &[CrossInput],
    gcfg: &GnnConfig,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) -> f32 {
    // Build (query, graph, label, distance) samples with negative
    // downsampling [50]. The distance target drives the auxiliary
    // regression head: the binary in/out-of-N_Q objective alone is too
    // coarse for the encoder the rankers reuse, so the encoder is also
    // asked to predict the (gamma*-normalized) distance itself.
    let mut samples: Vec<(usize, u32, f32, f32)> = Vec::new();
    for (qi, dists) in train_dists.iter().enumerate() {
        let positives: Vec<u32> = (0..dists.len() as u32)
            .filter(|&g| dists[g as usize] <= gamma_star)
            .collect();
        let num_neg = (positives.len() * 3).max(8).min(dists.len());
        for &g in &positives {
            samples.push((qi, g, 1.0, dists[g as usize] as f32));
        }
        for _ in 0..num_neg {
            let g = rng.gen_range(0..dists.len()) as u32;
            if dists[g as usize] > gamma_star {
                samples.push((qi, g, 0.0, dists[g as usize] as f32));
            }
        }
    }
    if samples.is_empty() {
        return 0.0;
    }
    let q_inputs: Vec<CrossInput> = train_dists
        .iter()
        .enumerate()
        .map(|(qi, _)| CrossInput::plain(&dataset.queries[dataset.split.train[qi]], gcfg))
        .collect();

    let gs = gamma_star.max(1.0) as f32;
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    let mut last_loss = 0.0f32;
    for epoch in 0..cfg.epochs as u32 {
        adam.lr = schedule.lr_at(epoch);
        samples.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for &(qi, g, label, d) in samples.iter().take(cfg.max_samples_per_epoch) {
            store.zero_grads();
            let mut tape = Tape::new();
            let out = cross.forward(&mut tape, store, &db_inputs[g as usize], &q_inputs[qi]);
            let logit = nh_head.forward(&mut tape, store, out.h_pair);
            let loss = tape.bce_with_logits(logit, label);
            let pred_d = dist_head.forward(&mut tape, store, out.h_pair);
            let reg = tape.mse(pred_d, Matrix::from_vec(1, 1, vec![d / gs]));
            let reg_s = tape.scale(reg, 0.5);
            let joint = tape.add(loss, reg_s);
            total += tape.value(loss).scalar();
            count += 1;
            tape.backward(joint, store);
            adam.step(store);
        }
        last_loss = total / count.max(1) as f32;
    }
    last_loss
}

#[allow(clippy::too_many_arguments)]
fn train_rk(
    dataset: &Dataset,
    adj: &[Vec<u32>],
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    cross: &CrossGraphNet,
    cross_store: &ParamStore,
    db_inputs: &[CrossInput],
    db_embeds: &[Vec<f32>],
    gin: &Gin,
    gin_store: &ParamStore,
    rk_heads: &[Mlp],
    rk_store: &mut ParamStore,
    gcfg: &GnnConfig,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) -> f32 {
    // Training states: (Q, G in N_Q, neighbor G') with the neighbor's rank
    // among G's neighbors by distance to Q (paper §IV-C: the reduced
    // training set restricted to the neighborhood of Q).
    struct RkSample {
        feat: Vec<f32>,
        /// Rank position of the neighbor (0-based) and neighbor count.
        rank: usize,
        total: usize,
    }
    let mut samples: Vec<RkSample> = Vec::new();
    let max_states_per_query = 24;
    for (qi, dists) in train_dists.iter().enumerate() {
        let query = &dataset.queries[dataset.split.train[qi]];
        let q_input = CrossInput::plain(query, gcfg);
        let q_gin = gin.embed(gin_store, query).data().to_vec();
        let mut in_nq: Vec<u32> = (0..dists.len() as u32)
            .filter(|&g| dists[g as usize] <= gamma_star)
            .collect();
        in_nq.shuffle(rng);
        for &g in in_nq.iter().take(max_states_per_query) {
            let neighbors = &adj[g as usize];
            if neighbors.is_empty() {
                continue;
            }
            let mut ranked: Vec<u32> = neighbors.clone();
            ranked.sort_by(|&a, &b| {
                dists[a as usize]
                    .partial_cmp(&dists[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            // Pair embeddings come from the frozen encoder, so every
            // neighbor's feature is independent — build them in parallel,
            // order-preserving (rank = position in `ranked`).
            samples.extend(lan_par::par_map_indices(ranked.len(), |rank| {
                let nb = ranked[rank];
                let mut tape = Tape::new();
                let out = cross.forward(&mut tape, cross_store, &db_inputs[nb as usize], &q_input);
                let pair = tape.value(out.h_pair).data().to_vec();
                let feat = rk_feature(
                    &pair,
                    &db_embeds[g as usize],
                    &q_gin,
                    &db_embeds[nb as usize],
                );
                RkSample {
                    feat,
                    rank,
                    total: ranked.len(),
                }
            }));
        }
    }
    if samples.is_empty() {
        return 0.0;
    }

    let schedule = StepDecay::paper();
    let mut last = 0.0f32;
    // Heads are cheap (features are cached), so give them a much larger
    // budget than the encoder.
    let mut adam = Adam::new(schedule.initial_lr);
    for epoch in 0..(cfg.epochs as u32 * 6) {
        adam.lr = schedule.lr_at(epoch);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for &si in order.iter().take(cfg.max_samples_per_epoch * 4) {
            let s = &samples[si];
            rk_store.zero_grads();
            for (i, head) in rk_heads.iter().enumerate() {
                // Positive iff the neighbor is among the top (i+1)·y% ranks.
                let top = (((i + 1) * cfg.batch_pct * s.total) as f64 / 100.0).ceil() as usize;
                let label = if s.rank < top.max(1) { 1.0 } else { 0.0 };
                let mut tape = Tape::new();
                let x = tape.leaf(Matrix::from_vec(1, s.feat.len(), s.feat.clone()));
                let logit = head.forward(&mut tape, rk_store, x);
                let loss = tape.bce_with_logits(logit, label);
                total += tape.value(loss).scalar();
                count += 1;
                tape.backward(loss, rk_store);
            }
            adam.step(rk_store);
        }
        last = total / count.max(1) as f32;
    }
    last
}

#[allow(clippy::too_many_arguments)]
fn train_mc(
    dataset: &Dataset,
    train_dists: &[Vec<f64>],
    gamma_star: f64,
    kmeans: &KMeans,
    _db_embeds: &[Vec<f32>],
    gin: &Gin,
    gin_store: &ParamStore,
    mc_head: &Mlp,
    mc_store: &mut ParamStore,
    cfg: &ModelConfig,
    rng: &mut StdRng,
) {
    let members = kmeans.members();
    struct McSample {
        input: Vec<f32>,
        target: f32,
    }
    let mut samples: Vec<McSample> = Vec::new();
    for (qi, dists) in train_dists.iter().enumerate() {
        let q = &dataset.queries[dataset.split.train[qi]];
        let qe = gin.embed(gin_store, q).data().to_vec();
        for (c, ms) in members.iter().enumerate() {
            if ms.is_empty() {
                continue;
            }
            let inter = ms
                .iter()
                .filter(|&&g| dists[g as usize] <= gamma_star)
                .count();
            let target = inter as f32 / ms.len() as f32;
            let mut input = kmeans.centroids[c].clone();
            input.extend_from_slice(&qe);
            samples.push(McSample { input, target });
        }
    }
    if samples.is_empty() {
        return;
    }
    let schedule = StepDecay::paper();
    let mut adam = Adam::new(schedule.initial_lr);
    for epoch in 0..(cfg.epochs as u32 * 4) {
        adam.lr = schedule.lr_at(epoch);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        for &si in order.iter().take(cfg.max_samples_per_epoch) {
            let s = &samples[si];
            mc_store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::from_vec(1, s.input.len(), s.input.clone()));
            let out = mc_head.forward(&mut tape, mc_store, x);
            let loss = tape.mse(out, Matrix::from_vec(1, 1, vec![s.target]));
            tape.backward(loss, mc_store);
            adam.step(mc_store);
        }
    }
}
