//! Cross-query fused hop scoring: a combining funnel over
//! [`FusedHeads`].
//!
//! PR-4's fast path already stacks one hop's neighbors into a single
//! fused-head matmul *per query*. The serving front-end co-batches
//! concurrent queries per shard, and this service extends the stacking
//! *across* queries: every hop-scoring job submitted while a combine is
//! in flight is parked, and the next thread to find the funnel idle
//! drains the whole queue, stacks all parked feature rows into one
//! matrix, and runs **one** `FusedHeads::score_into` for all of them.
//!
//! # Bit-identity
//!
//! `FusedHeads::score_into` guarantees each output row depends only on
//! its own input row (documented and property-tested in `lan-tensor`),
//! and the per-row score reduction below (`Σ_heads sigmoid(logit)`, head
//! order ascending) is byte-for-byte the reduction of
//! `LanModels::rank_batches`. A job therefore receives exactly the
//! scores it would have computed alone, no matter which queries it was
//! co-batched with — this is what makes the serving path's results
//! provably identical to serial execution (pinned by the equivalence
//! property tests in `lan-core` and `lan-serve`).
//!
//! # Liveness
//!
//! No dedicated scorer thread and no timers: a submitting thread either
//! becomes the combiner (funnel idle) or waits on the condvar for a
//! combiner to deliver its result. The combiner drains only the jobs
//! present when it starts; jobs arriving mid-combine are parked and the
//! first of them to wake becomes the next combiner. Under zero
//! concurrency the funnel degenerates to one-job batches with one
//! uncontended mutex acquisition of overhead.

use lan_obs::{names, Counter};
use lan_tensor::{sigmoid, FusedHeads, Matrix};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, OnceLock};

struct FusedMetrics {
    calls: &'static Counter,
    rows: &'static Counter,
    jobs: &'static Counter,
    xquery: &'static Counter,
}

fn metrics() -> &'static FusedMetrics {
    static M: OnceLock<FusedMetrics> = OnceLock::new();
    M.get_or_init(|| FusedMetrics {
        calls: lan_obs::counter(names::FUSED_CALLS),
        rows: lan_obs::counter(names::FUSED_ROWS),
        jobs: lan_obs::counter(names::FUSED_JOBS),
        xquery: lan_obs::counter(names::FUSED_XQUERY),
    })
}

/// One parked hop-scoring job: a flat `rows × dim` feature buffer.
struct PendingJob {
    id: u64,
    rows: usize,
    feats: Vec<f32>,
}

struct SvcState {
    next_id: u64,
    pending: Vec<PendingJob>,
    combining: bool,
    done: HashMap<u64, Vec<f32>>,
}

/// The combining funnel. One instance per shard (co-batched queries of a
/// shard share its `FusedHeads` weights; fusing across shards would mix
/// different models). Shared by reference across the shard's co-batched
/// query executions.
pub struct FusedScoreService {
    state: Mutex<SvcState>,
    cv: Condvar,
}

impl Default for FusedScoreService {
    fn default() -> Self {
        Self::new()
    }
}

impl FusedScoreService {
    pub fn new() -> Self {
        FusedScoreService {
            state: Mutex::new(SvcState {
                next_id: 0,
                pending: Vec::new(),
                combining: false,
                done: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Scores `feats` (a flat `rows × dim` buffer, `rows >= 1`) through
    /// `fused`, returning one summed-sigmoid score per row. Blocks until
    /// the result is available; the rows may be computed by this thread
    /// (as combiner, possibly stacked with other queries' parked jobs) or
    /// by a sibling. All callers of one service instance must pass the
    /// same `fused` weights.
    pub fn score(&self, fused: &FusedHeads, dim: usize, feats: Vec<f32>) -> Vec<f32> {
        debug_assert!(dim > 0 && !feats.is_empty() && feats.len().is_multiple_of(dim));
        let rows = feats.len() / dim;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.next_id;
        st.next_id += 1;
        st.pending.push(PendingJob { id, rows, feats });
        loop {
            if let Some(scores) = st.done.remove(&id) {
                return scores;
            }
            if !st.combining {
                // Funnel idle and our job is still parked: become the
                // combiner and drain everything parked so far.
                st.combining = true;
                let jobs = std::mem::take(&mut st.pending);
                drop(st);
                let mut outputs = Self::combine(fused, dim, &jobs);
                st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.combining = false;
                let mut mine = None;
                for (job, scores) in jobs.iter().zip(outputs.drain(..)) {
                    if job.id == id {
                        mine = Some(scores);
                    } else {
                        st.done.insert(job.id, scores);
                    }
                }
                // Wake parked siblings: delivered jobs find their scores,
                // mid-combine arrivals find the funnel idle and take over.
                self.cv.notify_all();
                return mine.expect("combiner always drains its own job");
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stacks every job's rows into one matrix, runs one fused forward,
    /// and splits the per-row scores back out per job (row order within a
    /// job preserved, so the reduction is bit-identical to a solo run).
    fn combine(fused: &FusedHeads, dim: usize, jobs: &[PendingJob]) -> Vec<Vec<f32>> {
        thread_local! {
            static SCRATCH: RefCell<(Matrix, Matrix, Matrix)> =
                RefCell::new((Matrix::zeros(0, 0), Matrix::zeros(0, 0), Matrix::zeros(0, 0)));
        }
        let total_rows: usize = jobs.iter().map(|j| j.rows).sum();
        let m = metrics();
        m.calls.inc();
        m.rows.add(total_rows as u64);
        m.jobs.add(jobs.len() as u64);
        if jobs.len() > 1 {
            m.xquery.inc();
        }
        SCRATCH.with(|s| {
            let (feats, hidden, logits) = &mut *s.borrow_mut();
            feats.reset(total_rows, dim);
            let mut r = 0usize;
            for job in jobs {
                for jr in 0..job.rows {
                    feats
                        .row_mut(r)
                        .copy_from_slice(&job.feats[jr * dim..(jr + 1) * dim]);
                    r += 1;
                }
            }
            fused.score_into(feats, hidden, logits);
            let mut out = Vec::with_capacity(jobs.len());
            let mut r = 0usize;
            for job in jobs {
                let mut scores = Vec::with_capacity(job.rows);
                for _ in 0..job.rows {
                    let mut score = 0.0f32;
                    for hd in 0..fused.num_heads {
                        score += sigmoid(logits.get(r, hd));
                    }
                    scores.push(score);
                    r += 1;
                }
                out.push(scores);
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_tensor::{Mlp, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn tiny_fused(store: &mut ParamStore, seed: u64) -> FusedHeads {
        let mut rng = StdRng::seed_from_u64(seed);
        let heads: Vec<Mlp> = (0..3)
            .map(|_| Mlp::new(&mut rng, store, &[5, 4, 1]))
            .collect();
        FusedHeads::new(&heads, store)
    }

    fn solo_scores(fused: &FusedHeads, dim: usize, feats: &[f32]) -> Vec<f32> {
        let rows = feats.len() / dim;
        let mut x = Matrix::zeros(rows, dim);
        for r in 0..rows {
            x.row_mut(r).copy_from_slice(&feats[r * dim..(r + 1) * dim]);
        }
        let mut hidden = Matrix::zeros(0, 0);
        let mut logits = Matrix::zeros(0, 0);
        fused.score_into(&x, &mut hidden, &mut logits);
        (0..rows)
            .map(|r| {
                (0..fused.num_heads)
                    .map(|h| sigmoid(logits.get(r, h)))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn funnel_matches_solo_scoring_bitwise() {
        let mut store = ParamStore::new();
        let fused = tiny_fused(&mut store, 0x5eed);
        let dim = 5;
        let svc = FusedScoreService::new();
        for rows in [1usize, 2, 7] {
            let feats: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.37).sin()).collect();
            let got = svc.score(&fused, dim, feats.clone());
            let want = solo_scores(&fused, dim, &feats);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn concurrent_submitters_all_get_their_own_rows() {
        let mut store = ParamStore::new();
        let fused = Arc::new(tiny_fused(&mut store, 0xfeed));
        let dim = 5;
        let svc = Arc::new(FusedScoreService::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let fused = Arc::clone(&fused);
                std::thread::spawn(move || {
                    let mut all = Vec::new();
                    for round in 0..16u64 {
                        let rows = 1 + ((t + round) % 4) as usize;
                        let feats: Vec<f32> = (0..rows * dim)
                            .map(|i| ((t * 1000 + round * 10 + i as u64) as f32 * 0.11).cos())
                            .collect();
                        let got = svc.score(&fused, dim, feats.clone());
                        all.push((feats, got));
                    }
                    all
                })
            })
            .collect();
        for h in handles {
            for (feats, got) in h.join().unwrap() {
                let want = solo_scores(&fused, dim, &feats);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "a co-batched job received rows that differ from its solo scores"
                );
            }
        }
    }
}
