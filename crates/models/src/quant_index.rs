//! The quantized prefilter tier's model-side pieces: calibration of the
//! raw code distances to operational-GED scale and the
//! [`lan_pg::CandidatePrefilter`] adapter the router consumes.
//!
//! [`lan_gnn::QuantStore`] gives *uncalibrated* surrogates (Hamming counts
//! or integer squared-L2 over `u8` codes) whose scale has nothing to do
//! with GED. [`QuantIndex`] fits one linear map per mode,
//! `pred = a + b·raw`, by least squares over the training workload's
//! `(raw code distance, operational distance)` pairs — the same
//! `train_dists` matrix every other model trains on, so calibration adds
//! no distance computations. The calibrated prediction is what both
//! consumers see:
//!
//! * [`QuantIndex::keys`] — per-database-graph predictions used by
//!   `ground_truth_knn_ordered` as visit-order keys (result-identical by
//!   construction, any calibration quality);
//! * [`QuantPrefilter`] — skips a routing candidate when
//!   `pred > tau·margin + slack`; the margin/slack headroom absorbs
//!   calibration error, trading a little of the NDC saving for recall
//!   (the quant bench sweeps it and gates recall ≥ 0.98).

use lan_gnn::{QuantMode, QuantQuery, QuantStore};
use lan_obs::{names, Counter};
use lan_pg::CandidatePrefilter;

/// One fitted linear map `raw → predicted operational distance`.
#[derive(Debug, Clone, Copy)]
pub struct QuantCalib {
    pub a: f64,
    pub b: f64,
}

impl QuantCalib {
    /// Least-squares fit of `d ≈ a + b·raw`. Degenerate inputs (no pairs,
    /// or zero raw variance) fall back to the constant mean with `b = 0`
    /// — predictions then carry no per-candidate signal and the prefilter
    /// margin test keeps every candidate (safe, never wrong).
    fn fit(pairs: &[(f64, f64)]) -> QuantCalib {
        let n = pairs.len() as f64;
        if pairs.is_empty() {
            return QuantCalib { a: 0.0, b: 0.0 };
        }
        let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let var_x = pairs.iter().map(|p| (p.0 - mean_x).powi(2)).sum::<f64>();
        if var_x <= 1e-12 {
            return QuantCalib { a: mean_y, b: 0.0 };
        }
        let cov = pairs
            .iter()
            .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
            .sum::<f64>();
        let b = cov / var_x;
        QuantCalib {
            a: mean_y - b * mean_x,
            b,
        }
    }

    pub fn predict(&self, raw: f64) -> f64 {
        self.a + self.b * raw
    }
}

/// The packed code store plus per-mode GED calibration — everything the
/// two prefilter consumers need, built once at index time.
pub struct QuantIndex {
    pub store: QuantStore,
    pub calib_binary: QuantCalib,
    pub calib_scalar: QuantCalib,
}

impl QuantIndex {
    /// Builds the code store from the database embeddings and calibrates
    /// both modes against the training workload (`train_embeds[qi]` is
    /// the GIN embedding of training query `qi`, `train_dists[qi][g]` its
    /// operational distance to database graph `g`). Returns `None` when
    /// there is nothing to quantize.
    pub fn build(
        db_embeds: &[Vec<f32>],
        train_embeds: &[Vec<f32>],
        train_dists: &[Vec<f64>],
    ) -> Option<QuantIndex> {
        assert_eq!(train_embeds.len(), train_dists.len());
        let store = QuantStore::build(db_embeds)?;
        let n = store.len();
        let mut pairs_b: Vec<(f64, f64)> = Vec::with_capacity(train_embeds.len() * n);
        let mut pairs_s: Vec<(f64, f64)> = Vec::with_capacity(train_embeds.len() * n);
        for (qe, ds) in train_embeds.iter().zip(train_dists) {
            assert_eq!(ds.len(), n, "train_dists row must cover the database");
            let q = store.encode(qe);
            for g in 0..n as u32 {
                let d = ds[g as usize];
                pairs_b.push((store.hamming(&q, g) as f64, d));
                pairs_s.push((store.l2sq(&q, g) as f64, d));
            }
        }
        Some(QuantIndex {
            store,
            calib_binary: QuantCalib::fit(&pairs_b),
            calib_scalar: QuantCalib::fit(&pairs_s),
        })
    }

    /// Encodes a query embedding (both modes at once).
    pub fn encode(&self, embed: &[f32]) -> QuantQuery {
        self.store.encode(embed)
    }

    /// Calibrated predicted operational distance to database graph `id`.
    pub fn predict(&self, mode: QuantMode, q: &QuantQuery, id: u32) -> f64 {
        let raw = self.store.raw_score(mode, q, id);
        match mode {
            QuantMode::Binary => self.calib_binary.predict(raw),
            QuantMode::Scalar => self.calib_scalar.predict(raw),
            QuantMode::Off => unreachable!("raw_score rejects Off"),
        }
    }

    /// Calibrated predictions for every database graph — the visit-order
    /// keys for `ground_truth_knn_ordered`.
    pub fn keys(&self, mode: QuantMode, q: &QuantQuery) -> Vec<f64> {
        (0..self.store.len() as u32)
            .map(|g| self.predict(mode, q, g))
            .collect()
    }
}

/// Per-query adapter plugging the quantized tier into `np_route` (see
/// `lan_pg::prefilter` for when the router consults it and why skips are
/// recall-safe). One instance per query; `Sync` because sharded queries
/// probe it from worker threads.
pub struct QuantPrefilter<'a> {
    index: &'a QuantIndex,
    mode: QuantMode,
    q: QuantQuery,
    margin: f64,
    slack: f64,
    m_evals: &'static Counter,
    m_pruned: &'static Counter,
}

impl<'a> QuantPrefilter<'a> {
    /// `margin`/`slack` set the safety headroom: a candidate is skipped
    /// only when its calibrated prediction exceeds `tau·margin + slack`.
    /// `margin > 1` scales with the threshold (relative headroom), `slack`
    /// guards the small-`tau` regime where relative error blows up.
    pub fn new(index: &'a QuantIndex, mode: QuantMode, embed: &[f32], margin: f64) -> Self {
        assert!(mode != QuantMode::Off, "prefilter needs an active mode");
        assert!(margin >= 1.0, "margin below 1 is never recall-safe");
        QuantPrefilter {
            q: index.encode(embed),
            index,
            mode,
            margin,
            slack: 1.0,
            m_evals: lan_obs::counter(names::QUANT_PREFILTER_EVALS),
            m_pruned: lan_obs::counter(names::QUANT_PREFILTER_PRUNED),
        }
    }
}

impl CandidatePrefilter for QuantPrefilter<'_> {
    fn predict_beyond(&self, id: u32, tau: f64) -> bool {
        self.m_evals.inc();
        let pred = self.index.predict(self.mode, &self.q, id);
        let beyond = pred > tau * self.margin + self.slack;
        if beyond {
            self.m_pruned.inc();
        }
        beyond
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_linear_relation() {
        let pairs: Vec<(f64, f64)> = (0..40).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        let c = QuantCalib::fit(&pairs);
        assert!((c.a - 3.0).abs() < 1e-9, "a = {}", c.a);
        assert!((c.b - 0.5).abs() < 1e-9, "b = {}", c.b);
    }

    #[test]
    fn fit_degenerate_is_constant_mean() {
        let c = QuantCalib::fit(&[(2.0, 5.0), (2.0, 7.0)]);
        assert_eq!(c.b, 0.0);
        assert!((c.a - 6.0).abs() < 1e-9);
        let empty = QuantCalib::fit(&[]);
        assert_eq!((empty.a, empty.b), (0.0, 0.0));
    }

    #[test]
    fn calibrated_index_predicts_on_synthetic_embeddings() {
        // Embeddings on a line, distances proportional to position: the
        // scalar mode must calibrate to near-perfect rank order.
        let db: Vec<Vec<f32>> = (0..32).map(|i| vec![i as f32 * 0.1; 8]).collect();
        let train_embeds: Vec<Vec<f32>> = vec![vec![0.0; 8], vec![1.6; 8]];
        let train_dists: Vec<Vec<f64>> = train_embeds
            .iter()
            .map(|qe| {
                (0..32)
                    .map(|i| (qe[0] as f64 - i as f64 * 0.1).abs() * 10.0)
                    .collect()
            })
            .collect();
        let idx = QuantIndex::build(&db, &train_embeds, &train_dists).unwrap();
        let q = idx.encode(&[0.0f32; 8]);
        let keys = idx.keys(QuantMode::Scalar, &q);
        // Predictions must increase with the true distance from position 0.
        for w in keys.windows(2) {
            assert!(w[0] <= w[1] + 1e-6, "keys not monotone: {keys:?}");
        }
        // And the prefilter fires on far graphs but not near ones at a
        // mid-scale tau.
        let pf = QuantPrefilter::new(&idx, QuantMode::Scalar, &[0.0f32; 8], 1.0);
        assert!(!pf.predict_beyond(0, 8.0), "near graph wrongly skipped");
        assert!(pf.predict_beyond(31, 8.0), "far graph not skipped");
    }
}
