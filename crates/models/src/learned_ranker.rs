//! The learned [`NeighborRanker`] adapter: plugs `M_rk` into `np_route`.

use crate::models::{LanModels, QueryContext};
use lan_pg::np_route::NeighborRanker;

/// Ranks neighbors with the trained `M_rk` models (paper §IV-C). Inside the
/// query neighborhood (`d(G, Q) <= γ*`) neighbors are partitioned into
/// predicted batches; outside, all neighbors form a single batch (no
/// pruning), exactly as §IV-C prescribes.
pub struct LearnedRanker<'a> {
    pub models: &'a LanModels,
    pub ctx: &'a QueryContext,
    /// Use the compressed GNN-graph inputs (paper §VI) for the database
    /// side of every cross-graph forward.
    pub use_cg: bool,
}

impl<'a> LearnedRanker<'a> {
    pub fn new(models: &'a LanModels, ctx: &'a QueryContext, use_cg: bool) -> Self {
        LearnedRanker {
            models,
            ctx,
            use_cg,
        }
    }
}

impl NeighborRanker for LearnedRanker<'_> {
    fn rank(&self, node: u32, neighbors: &[u32], d_node: f64) -> Vec<Vec<u32>> {
        self.models
            .rank_batches(self.ctx, node, neighbors, d_node, self.use_cg)
    }
}
