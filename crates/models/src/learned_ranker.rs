//! The learned [`NeighborRanker`] adapter: plugs `M_rk` into `np_route`.

use crate::fused_service::FusedScoreService;
use crate::models::{LanModels, QueryContext};
use lan_pg::np_route::NeighborRanker;

/// Ranks neighbors with the trained `M_rk` models (paper §IV-C). Inside the
/// query neighborhood (`d(G, Q) <= γ*`) neighbors are partitioned into
/// predicted batches; outside, all neighbors form a single batch (no
/// pruning), exactly as §IV-C prescribes.
///
/// Scoring runs on the tape-free fast path: pair embeddings come from the
/// per-query cache in `ctx` (computed once per database graph per query),
/// and by default a hop's neighbors are stacked into one batched
/// fused-head forward. [`LearnedRanker::per_neighbor`] scores each
/// neighbor as its own 1-row batch through the same kernels —
/// bit-identical results, kept for the equivalence property tests.
pub struct LearnedRanker<'a> {
    pub models: &'a LanModels,
    pub ctx: &'a QueryContext,
    /// Use the compressed GNN-graph inputs (paper §VI) for the database
    /// side of every cross-graph forward.
    pub use_cg: bool,
    /// Stack the whole hop into one fused forward (default) instead of
    /// scoring neighbors one at a time.
    pub batched: bool,
    /// When set, hop scoring routes through this shard-shared combining
    /// funnel so co-batched queries fuse into one matmul (serving path;
    /// bit-identical to the solo batched path).
    pub shared: Option<&'a FusedScoreService>,
}

impl<'a> LearnedRanker<'a> {
    pub fn new(models: &'a LanModels, ctx: &'a QueryContext, use_cg: bool) -> Self {
        LearnedRanker {
            models,
            ctx,
            use_cg,
            batched: true,
            shared: None,
        }
    }

    /// A ranker that scores neighbors one at a time (same kernels, same
    /// cache, bit-identical batches — just no stacking).
    pub fn per_neighbor(models: &'a LanModels, ctx: &'a QueryContext, use_cg: bool) -> Self {
        LearnedRanker {
            models,
            ctx,
            use_cg,
            batched: false,
            shared: None,
        }
    }

    /// A ranker that submits each hop to `svc`, the shard's cross-query
    /// combining funnel (serving path).
    pub fn with_shared(
        models: &'a LanModels,
        ctx: &'a QueryContext,
        use_cg: bool,
        svc: &'a FusedScoreService,
    ) -> Self {
        LearnedRanker {
            models,
            ctx,
            use_cg,
            batched: true,
            shared: Some(svc),
        }
    }
}

impl NeighborRanker for LearnedRanker<'_> {
    fn rank(&self, node: u32, neighbors: &[u32], d_node: f64) -> Vec<Vec<u32>> {
        if let Some(svc) = self.shared {
            self.models
                .rank_batches_shared(self.ctx, node, neighbors, d_node, self.use_cg, svc)
        } else if self.batched {
            self.models
                .rank_batches(self.ctx, node, neighbors, d_node, self.use_cg)
        } else {
            self.models
                .rank_batches_per_neighbor(self.ctx, node, neighbors, d_node, self.use_cg)
        }
    }
}
