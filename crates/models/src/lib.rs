//! The learned models of LAN: neighbor rankers `M_rk^i`, neighborhood model
//! `M_nh`, cluster model `M_c`, the GIN graph embedder, KMeans, and the
//! [`learned_ranker::LearnedRanker`] adapter that plugs into
//! `lan_pg::np_route`.

pub mod fused_service;
pub mod kmeans;
pub mod learned_ranker;
pub mod models;
pub mod quant_index;
pub mod store;

pub use fused_service::FusedScoreService;
pub use kmeans::KMeans;
pub use learned_ranker::LearnedRanker;
pub use models::{LanModels, ModelConfig, QueryContext, SlabArena, TrainReport};
pub use quant_index::{QuantCalib, QuantIndex, QuantPrefilter};
