//! On-disk codec for the trained [`LanModels`] bundle.
//!
//! Serialization strategy: persist exactly the artifacts that are
//! expensive or RNG-dependent to reproduce — the four parameter stores'
//! trained values, the KMeans clustering, `gamma_star`, the database GIN
//! embeddings, and the quantized prefilter (codes + calibration) — and
//! *recompute* the cheap deterministic ones at load (compressed
//! GNN-graphs and cross inputs, which are pure functions of the database
//! graphs and the config).
//!
//! Loading replays `LanModels::train`'s network-construction order
//! against a fresh seeded RNG — including the auxiliary distance head
//! that training allocates in the cross store and then discards — so the
//! parameter-id layout of every store matches the file exactly; the
//! store loaders then cross-check count and shape of every parameter
//! before overwriting. `FusedHeads` is rebuilt *after* the value load
//! (it copies weights at construction). The result answers queries
//! bit-identically to the index that was saved.

use crate::kmeans::KMeans;
use crate::models::{LanModels, ModelConfig, TrainReport};
use crate::quant_index::{QuantCalib, QuantIndex};
use lan_datasets::Dataset;
use lan_gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput, Gin, GnnConfig, QuantStore};
use lan_store::{Dec, Enc, StoreError};
use lan_tensor::{FusedHeads, Mlp, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

impl ModelConfig {
    /// Serializes every hyperparameter.
    pub fn store_encode(&self, enc: &mut Enc) {
        enc.put_u64(self.embed_dim as u64);
        enc.put_u64(self.layers as u64);
        enc.put_u64(self.batch_pct as u64);
        enc.put_u64(self.nh_cover_k as u64);
        enc.put_f64(self.nh_cover_quantile);
        enc.put_u64(self.epochs as u64);
        enc.put_u64(self.max_samples_per_epoch as u64);
        enc.put_u64(self.clusters as u64);
        enc.put_u64(self.top_clusters as u64);
        enc.put_u64(self.mlp_hidden as u64);
        enc.put_u64(self.init_samples as u64);
        enc.put_u64(self.seed);
    }

    /// Decodes a config written by [`ModelConfig::store_encode`].
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<ModelConfig, StoreError> {
        let cfg = ModelConfig {
            embed_dim: dec.get_u64()? as usize,
            layers: dec.get_u64()? as usize,
            batch_pct: dec.get_u64()? as usize,
            nh_cover_k: dec.get_u64()? as usize,
            nh_cover_quantile: dec.get_f64()?,
            epochs: dec.get_u64()? as usize,
            max_samples_per_epoch: dec.get_u64()? as usize,
            clusters: dec.get_u64()? as usize,
            top_clusters: dec.get_u64()? as usize,
            mlp_hidden: dec.get_u64()? as usize,
            init_samples: dec.get_u64()? as usize,
            seed: dec.get_u64()?,
        };
        if cfg.embed_dim == 0 || cfg.layers == 0 || cfg.batch_pct == 0 || cfg.mlp_hidden == 0 {
            return Err(StoreError::corrupt("model config has a zero dimension"));
        }
        Ok(cfg)
    }
}

impl TrainReport {
    /// Serializes the training diagnostics.
    pub fn store_encode(&self, enc: &mut Enc) {
        enc.put_f64(self.gamma_star);
        enc.put_f64(self.nh_precision);
        enc.put_f64(self.nh_recall);
        enc.put_f32(self.nh_loss);
        enc.put_f32(self.rk_loss);
    }

    /// Decodes a report written by [`TrainReport::store_encode`].
    pub fn store_decode(dec: &mut Dec<'_>) -> Result<TrainReport, StoreError> {
        Ok(TrainReport {
            gamma_star: dec.get_f64()?,
            nh_precision: dec.get_f64()?,
            nh_recall: dec.get_f64()?,
            nh_loss: dec.get_f32()?,
            rk_loss: dec.get_f32()?,
        })
    }
}

fn encode_kmeans(km: &KMeans, enc: &mut Enc) {
    let k = km.centroids.len();
    let dim = km.centroids.first().map_or(0, |c| c.len());
    enc.put_u64(k as u64);
    enc.put_u64(dim as u64);
    let flat: Vec<f32> = km.centroids.iter().flatten().copied().collect();
    enc.put_f32_slice(&flat);
    enc.put_u32_slice(&km.assignment);
}

fn decode_kmeans(dec: &mut Dec<'_>, n_points: usize) -> Result<KMeans, StoreError> {
    let k = dec.get_u64()? as usize;
    let dim = dec.get_u64()? as usize;
    let flat = dec.get_f32_slice()?;
    let assignment = dec.get_u32_slice()?;
    let expect = k
        .checked_mul(dim)
        .ok_or_else(|| StoreError::corrupt("kmeans shape overflows"))?;
    if flat.len() != expect {
        return Err(StoreError::corrupt(format!(
            "kmeans centroids: {} values for {k}x{dim}",
            flat.len()
        )));
    }
    if assignment.len() != n_points {
        return Err(StoreError::corrupt(format!(
            "kmeans assignment covers {} of {n_points} points",
            assignment.len()
        )));
    }
    if assignment.iter().any(|&c| c as usize >= k.max(1)) {
        return Err(StoreError::corrupt(
            "kmeans assignment references a cluster >= k",
        ));
    }
    Ok(KMeans {
        centroids: flat.chunks(dim.max(1)).map(|c| c.to_vec()).collect(),
        assignment: assignment.to_vec(),
    })
}

fn encode_embeds(embeds: &[Vec<f32>], enc: &mut Enc) {
    let dim = embeds.first().map_or(0, |e| e.len());
    enc.put_u64(embeds.len() as u64);
    enc.put_u64(dim as u64);
    let flat: Vec<f32> = embeds.iter().flatten().copied().collect();
    enc.put_f32_slice(&flat);
}

fn decode_embeds(dec: &mut Dec<'_>, n_expected: usize) -> Result<Vec<Vec<f32>>, StoreError> {
    let n = dec.get_u64()? as usize;
    let dim = dec.get_u64()? as usize;
    let flat = dec.get_f32_slice()?;
    if n != n_expected {
        return Err(StoreError::corrupt(format!(
            "db_embeds cover {n} of {n_expected} graphs"
        )));
    }
    let expect = n
        .checked_mul(dim)
        .ok_or_else(|| StoreError::corrupt("db_embeds shape overflows"))?;
    if flat.len() != expect {
        return Err(StoreError::corrupt(format!(
            "db_embeds: {} values for {n}x{dim}",
            flat.len()
        )));
    }
    Ok(flat.chunks(dim.max(1)).map(|c| c.to_vec()).collect())
}

/// The cross store's network skeleton, replayed exactly as
/// `LanModels::train` allocates it. The discarded distance head must be
/// constructed too: its parameters occupy ids in the cross store, and
/// dropping it from the replay would shift every later id.
struct Skeleton {
    gin: Gin,
    gin_store: ParamStore,
    cross: CrossGraphNet,
    cross_store: ParamStore,
    nh_head: Mlp,
    rk_heads: Vec<Mlp>,
    rk_store: ParamStore,
    mc_head: Mlp,
    mc_store: ParamStore,
}

fn build_skeleton(cfg: &ModelConfig, num_labels: usize) -> Skeleton {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let gcfg = GnnConfig::uniform(num_labels, cfg.embed_dim, cfg.layers);
    let mut gin_store = ParamStore::new();
    let gin = Gin::new(&mut rng, &mut gin_store, gcfg.clone());
    let mut cross_store = ParamStore::new();
    let cross = CrossGraphNet::new(&mut rng, &mut cross_store, gcfg.clone());
    let nh_head = Mlp::new(
        &mut rng,
        &mut cross_store,
        &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
    );
    let _dist_head = Mlp::new(
        &mut rng,
        &mut cross_store,
        &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
    );
    let mut rk_store = ParamStore::new();
    let rk_heads: Vec<Mlp> = (0..LanModels::num_rankers(cfg))
        .map(|_| {
            Mlp::new(
                &mut rng,
                &mut rk_store,
                &[
                    crate::models::rk_feature_dim(cfg.embed_dim),
                    cfg.mlp_hidden,
                    1,
                ],
            )
        })
        .collect();
    let mut mc_store = ParamStore::new();
    let mc_head = Mlp::new(
        &mut rng,
        &mut mc_store,
        &[2 * cfg.embed_dim, cfg.mlp_hidden, 1],
    );
    Skeleton {
        gin,
        gin_store,
        cross,
        cross_store,
        nh_head,
        rk_heads,
        rk_store,
        mc_head,
        mc_store,
    }
}

impl LanModels {
    /// Serializes the trained bundle (weights + clustering + embeddings +
    /// quantized prefilter). Database-derived inference caches (`db_cgs`,
    /// `db_inputs_*`) are recomputed at load.
    pub fn store_encode(&self, enc: &mut Enc) {
        self.cfg.store_encode(enc);
        enc.put_u64(self.num_labels as u64);
        enc.put_f64(self.gamma_star);
        self.gin_store.store_encode_values(enc);
        self.cross_store.store_encode_values(enc);
        self.rk_store.store_encode_values(enc);
        self.mc_store.store_encode_values(enc);
        encode_kmeans(&self.kmeans, enc);
        encode_embeds(&self.db_embeds, enc);
        match &self.quant {
            Some(q) => {
                enc.put_bool(true);
                q.store.store_encode(enc);
                enc.put_f64(q.calib_binary.a);
                enc.put_f64(q.calib_binary.b);
                enc.put_f64(q.calib_scalar.a);
                enc.put_f64(q.calib_scalar.b);
            }
            None => enc.put_bool(false),
        }
    }

    /// Decodes a bundle written by [`LanModels::store_encode`] against the
    /// dataset it was trained on (needed to rebuild the inference caches).
    pub fn store_decode(dec: &mut Dec<'_>, dataset: &Dataset) -> Result<LanModels, StoreError> {
        let cfg = ModelConfig::store_decode(dec)?;
        let num_labels = dec.get_u64()? as usize;
        if num_labels != dataset.spec.num_labels as usize {
            return Err(StoreError::corrupt(format!(
                "model trained with {num_labels} labels, dataset has {}",
                dataset.spec.num_labels
            )));
        }
        let gamma_star = dec.get_f64()?;

        let mut sk = build_skeleton(&cfg, num_labels);
        sk.gin_store.store_load_values(dec)?;
        sk.cross_store.store_load_values(dec)?;
        sk.rk_store.store_load_values(dec)?;
        sk.mc_store.store_load_values(dec)?;

        let kmeans = decode_kmeans(dec, dataset.graphs.len())?;
        let db_embeds = decode_embeds(dec, dataset.graphs.len())?;
        let quant = if dec.get_bool()? {
            let store = QuantStore::store_decode(dec)?;
            if store.len() != dataset.graphs.len() {
                return Err(StoreError::corrupt(format!(
                    "quant store covers {} of {} graphs",
                    store.len(),
                    dataset.graphs.len()
                )));
            }
            let calib_binary = QuantCalib {
                a: dec.get_f64()?,
                b: dec.get_f64()?,
            };
            let calib_scalar = QuantCalib {
                a: dec.get_f64()?,
                b: dec.get_f64()?,
            };
            Some(QuantIndex {
                store,
                calib_binary,
                calib_scalar,
            })
        } else {
            None
        };

        // Fused ranker kernel: built AFTER the value load — it snapshots
        // the head weights at construction.
        let rk_fused = FusedHeads::new(&sk.rk_heads, &sk.rk_store);

        // Deterministic database-derived caches, recomputed exactly as
        // `train` computes them.
        let gcfg = GnnConfig::uniform(num_labels, cfg.embed_dim, cfg.layers);
        let db_cgs: Vec<CompressedGnnGraph> =
            lan_par::par_map_dyn(&dataset.graphs, lan_par::Grain::Coarse, |g| {
                CompressedGnnGraph::build(g, cfg.layers)
            });
        let db_inputs_cg: Vec<CrossInput> =
            lan_par::par_map_dyn(&db_cgs, lan_par::Grain::Coarse, |cg| {
                CrossInput::compressed(cg, &gcfg)
            });
        let db_inputs_plain: Vec<CrossInput> =
            lan_par::par_map_dyn(&dataset.graphs, lan_par::Grain::Coarse, |g| {
                CrossInput::plain(g, &gcfg)
            });

        Ok(LanModels {
            cfg,
            num_labels,
            gin: sk.gin,
            gin_store: sk.gin_store,
            cross: sk.cross,
            cross_store: sk.cross_store,
            nh_head: sk.nh_head,
            rk_heads: sk.rk_heads,
            rk_fused,
            rk_store: sk.rk_store,
            mc_head: sk.mc_head,
            mc_store: sk.mc_store,
            kmeans,
            gamma_star,
            db_embeds,
            quant,
            db_cgs,
            db_inputs_cg,
            db_inputs_plain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_datasets::DatasetSpec;
    use lan_ged::GedMethod;
    use lan_store::{Archive, Writer};

    fn tiny_trained() -> (Dataset, LanModels) {
        let spec = DatasetSpec::syn()
            .with_graphs(30)
            .with_queries(10)
            .with_metric(GedMethod::Hungarian);
        let dataset = Dataset::generate(spec);
        let cfg = ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 60,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            nh_cover_k: 6,
            ..ModelConfig::default()
        };
        let adj: Vec<Vec<u32>> = (0..dataset.graphs.len())
            .map(|i| {
                let n = dataset.graphs.len() as u32;
                vec![(i as u32 + 1) % n, (i as u32 + 2) % n]
            })
            .collect();
        let train_dists: Vec<Vec<f64>> = dataset
            .split
            .train
            .iter()
            .map(|&qi| {
                (0..dataset.graphs.len() as u32)
                    .map(|g| dataset.distance(&dataset.queries[qi], g))
                    .collect()
            })
            .collect();
        let (models, _) = LanModels::train(&dataset, &adj, &train_dists, cfg);
        (dataset, models)
    }

    #[test]
    fn models_round_trip_bit_identically() {
        let (dataset, models) = tiny_trained();
        let mut enc = Enc::new();
        models.store_encode(&mut enc);
        let mut w = Writer::new();
        w.add_section("m", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut dec = a.section("m").unwrap();
        let back = LanModels::store_decode(&mut dec, &dataset).unwrap();
        dec.expect_end().unwrap();

        // Raw weight identity across all four stores.
        for (src, dst) in [
            (&models.gin_store, &back.gin_store),
            (&models.cross_store, &back.cross_store),
            (&models.rk_store, &back.rk_store),
            (&models.mc_store, &back.mc_store),
        ] {
            assert_eq!(src.len(), dst.len());
            for id in 0..src.len() {
                assert_eq!(src.value(id).data(), dst.value(id).data(), "param {id}");
            }
        }
        assert_eq!(back.gamma_star.to_bits(), models.gamma_star.to_bits());
        assert_eq!(back.db_embeds, models.db_embeds);
        assert_eq!(back.kmeans.centroids, models.kmeans.centroids);
        assert_eq!(back.kmeans.assignment, models.kmeans.assignment);
        assert_eq!(back.quant.is_some(), models.quant.is_some());

        // Behavioral identity: same neighborhood prediction and same
        // ranker batches for a query neither side has seen in training.
        let q = &dataset.queries[0];
        let (c1, c2) = (models.query_context(q, true), back.query_context(q, true));
        assert_eq!(
            models.predicted_neighborhood(&c1, true),
            back.predicted_neighborhood(&c2, true)
        );
        let neighbors: Vec<u32> = (0..8).collect();
        assert_eq!(
            models.rank_batches(&c1, 0, &neighbors, 0.0, true),
            back.rank_batches(&c2, 0, &neighbors, 0.0, true)
        );
    }

    #[test]
    fn label_mismatch_is_typed() {
        let (dataset, models) = tiny_trained();
        let mut enc = Enc::new();
        models.store_encode(&mut enc);
        let mut w = Writer::new();
        w.add_section("m", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut dec = a.section("m").unwrap();
        let mut other = dataset.clone();
        other.spec.num_labels += 1;
        assert!(matches!(
            LanModels::store_decode(&mut dec, &other),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
