//! KMeans clustering (Lloyd's algorithm with k-means++ seeding), used by the
//! optimized neighborhood-model design (paper §V-B2) to restrict `M_nh`
//! predictions to promising clusters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted clustering.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k × dim` centroids, row-major.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster id of each input point.
    pub assignment: Vec<u32>,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits `k` clusters to `points` (each of equal dimension) with at most
    /// `iters` Lloyd iterations. `k` is clamped to the point count.
    pub fn fit(points: &[Vec<f32>], k: usize, iters: usize, seed: u64) -> Self {
        assert!(!points.is_empty(), "cannot cluster an empty set");
        let k = k.clamp(1, points.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        while centroids.len() < k {
            let d2: Vec<f32> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f32::INFINITY, f32::min)
                })
                .collect();
            let total: f32 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with current centroids; pick any.
                centroids.push(points[rng.gen_range(0..points.len())].clone());
                continue;
            }
            let mut x = rng.gen::<f32>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                x -= d;
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(points[chosen].clone());
        }

        let mut assignment = vec![0u32; points.len()];
        for _ in 0..iters {
            let mut moved = false;
            for (i, p) in points.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        sq_dist(p, a.1)
                            .partial_cmp(&sq_dist(p, b.1))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(j, _)| j as u32)
                    .unwrap();
                if assignment[i] != best {
                    assignment[i] = best;
                    moved = true;
                }
            }
            // Recompute centroids.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0f32; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                let c = assignment[i] as usize;
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, sum) in sums.iter().enumerate() {
                if counts[c] > 0 {
                    centroids[c] = sum.iter().map(|&x| x / counts[c] as f32).collect();
                }
            }
            if !moved {
                break;
            }
        }
        KMeans {
            centroids,
            assignment,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Members of each cluster.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut m = vec![Vec::new(); self.k()];
        for (i, &c) in self.assignment.iter().enumerate() {
            m[c as usize].push(i as u32);
        }
        m
    }

    /// Nearest cluster of an arbitrary point.
    pub fn nearest(&self, p: &[f32]) -> u32 {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|a, b| {
                sq_dist(p, a.1)
                    .partial_cmp(&sq_dist(p, b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(j, _)| j as u32)
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f32, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![center + (i as f32) * 0.01, center])
            .collect()
    }

    #[test]
    fn separates_clear_blobs() {
        let mut pts = blob(0.0, 10);
        pts.extend(blob(10.0, 10));
        let km = KMeans::fit(&pts, 2, 50, 1);
        assert_eq!(km.k(), 2);
        // All of blob 1 in one cluster, blob 2 in the other.
        let c0 = km.assignment[0];
        assert!(km.assignment[..10].iter().all(|&c| c == c0));
        assert!(km.assignment[10..].iter().all(|&c| c != c0));
    }

    #[test]
    fn k_clamped_to_points() {
        let pts = blob(0.0, 3);
        let km = KMeans::fit(&pts, 10, 10, 2);
        assert!(km.k() <= 3);
    }

    #[test]
    fn members_partition() {
        let mut pts = blob(0.0, 5);
        pts.extend(blob(5.0, 5));
        let km = KMeans::fit(&pts, 3, 20, 3);
        let members = km.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn nearest_matches_assignment() {
        let mut pts = blob(0.0, 6);
        pts.extend(blob(8.0, 6));
        let km = KMeans::fit(&pts, 2, 30, 4);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(km.nearest(p), km.assignment[i]);
        }
    }

    #[test]
    fn degenerate_identical_points() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let km = KMeans::fit(&pts, 3, 10, 5);
        assert!(km.k() >= 1);
        assert_eq!(km.assignment.len(), 8);
    }
}
