//! Equivalence properties of the tape-free inference fast path at the
//! models layer: the batched+cached `LearnedRanker` must route exactly
//! like the per-neighbor path, and the tape-free pair embeddings must
//! match the autograd-tape baseline.

use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_models::{LanModels, LearnedRanker, ModelConfig};
use lan_pg::np_route::np_route;
use lan_pg::{DistCache, PairCache, PgConfig, ProximityGraph};

fn tiny_setup() -> (Dataset, ProximityGraph, LanModels) {
    let spec = DatasetSpec::syn()
        .with_graphs(60)
        .with_queries(20)
        .with_metric(GedMethod::Hungarian);
    let ds = Dataset::generate(spec);
    let pair_fn = |a: u32, b: u32| ds.pair_distance(a, b);
    let pairs = PairCache::new(&pair_fn);
    let pg = ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(4));
    let train_dists: Vec<Vec<f64>> = ds
        .split
        .train
        .iter()
        .map(|&qi| {
            (0..ds.graphs.len() as u32)
                .map(|g| ds.distance(&ds.queries[qi], g))
                .collect()
        })
        .collect();
    let cfg = ModelConfig {
        embed_dim: 8,
        epochs: 2,
        max_samples_per_epoch: 200,
        nh_cover_k: 10,
        clusters: 4,
        top_clusters: 2,
        mlp_hidden: 8,
        ..ModelConfig::default()
    };
    let (models, _report) = LanModels::train(&ds, pg.base(), &train_dists, cfg);
    (ds, pg, models)
}

/// The fused batched hop forward must be bit-identical to scoring each
/// neighbor as its own 1-row batch: each fused output row depends only on
/// its own input row, so stacking cannot change a single bit.
#[test]
fn batched_ranking_is_bit_identical_to_per_neighbor() {
    let (ds, pg, models) = tiny_setup();
    for (qi, use_cg) in [(0usize, true), (1, false)] {
        let q = &ds.queries[ds.split.test[qi]];
        let ctx_a = models.query_context(q, use_cg);
        let ctx_b = models.query_context(q, use_cg);
        for node in 0..pg.base().len().min(12) as u32 {
            let neighbors = &pg.base()[node as usize];
            // Inside the neighborhood so ranking actually runs.
            let a = models.rank_batches(&ctx_a, node, neighbors, 0.0, use_cg);
            let b = models.rank_batches_per_neighbor(&ctx_b, node, neighbors, 0.0, use_cg);
            assert_eq!(a, b, "node {node} use_cg={use_cg}: batches diverged");
        }
    }
}

/// End-to-end routing equivalence: `np_route` driven by the default
/// (batched, cached) ranker returns the same results and NDC as the
/// per-neighbor ranker, on both plain and CG inference.
#[test]
fn np_route_identical_under_batched_and_per_neighbor_rankers() {
    let (ds, pg, models) = tiny_setup();
    for use_cg in [true, false] {
        for qi in 0..3 {
            let q = &ds.queries[ds.split.test[qi]];
            let qd = |g: u32| ds.distance(q, g);

            // Entry selection gets its own cache so both routed caches
            // start empty and report comparable NDC.
            let entry = pg.hnsw_entry(&DistCache::new(&qd));

            let ctx_a = models.query_context(q, use_cg);
            let cache_a = DistCache::new(&qd);
            let ranker_a = LearnedRanker::new(&models, &ctx_a, use_cg);
            let res_a = np_route(pg.base(), &cache_a, &ranker_a, &[entry], 8, 5, 1.0);

            let ctx_b = models.query_context(q, use_cg);
            let cache_b = DistCache::new(&qd);
            let ranker_b = LearnedRanker::per_neighbor(&models, &ctx_b, use_cg);
            let res_b = np_route(pg.base(), &cache_b, &ranker_b, &[entry], 8, 5, 1.0);

            assert_eq!(res_a.results, res_b.results, "qi={qi} use_cg={use_cg}");
            assert_eq!(res_a.ndc, res_b.ndc, "qi={qi} use_cg={use_cg}");
        }
    }
}

/// The tape-free pair embedding must equal the autograd-tape baseline
/// exactly — the infer kernels replicate the tape ops' accumulation order
/// bit for bit, and both paths share the per-query cache.
#[test]
fn cached_pair_embedding_matches_tape_baseline() {
    let (ds, _pg, models) = tiny_setup();
    for use_cg in [true, false] {
        let q = &ds.queries[ds.split.test[0]];
        // Separate contexts so each path computes its embeddings from
        // scratch rather than reading the other's cache.
        let ctx_infer = models.query_context(q, use_cg);
        let ctx_tape = models.query_context(q, use_cg);
        for g in 0..ds.graphs.len().min(16) as u32 {
            let fast = models.pair_embedding(&ctx_infer, g, use_cg);
            let tape = models.pair_embedding_tape(&ctx_tape, g, use_cg);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                tape.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "pair {g} use_cg={use_cg}: infer and tape embeddings differ"
            );
        }
    }
}
