//! Cluster-based neighborhood prediction (paper §V-B2): behavior of the
//! optimized design against the basic design.

use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_models::{LanModels, ModelConfig};
use lan_pg::{PairCache, PgConfig, ProximityGraph};

fn setup() -> (Dataset, LanModels) {
    let spec = DatasetSpec::syn()
        .with_graphs(60)
        .with_queries(20)
        .with_metric(GedMethod::Hungarian);
    let ds = Dataset::generate(spec);
    let pair_fn = |a: u32, b: u32| ds.pair_distance(a, b);
    let pairs = PairCache::new(&pair_fn);
    let pg = ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(4));
    let train_dists: Vec<Vec<f64>> = ds
        .split
        .train
        .iter()
        .map(|&qi| {
            (0..ds.graphs.len() as u32)
                .map(|g| ds.distance(&ds.queries[qi], g))
                .collect()
        })
        .collect();
    let cfg = ModelConfig {
        embed_dim: 8,
        epochs: 2,
        max_samples_per_epoch: 200,
        nh_cover_k: 10,
        clusters: 4,
        top_clusters: 2,
        mlp_hidden: 8,
        ..ModelConfig::default()
    };
    let (models, _) = LanModels::train(&ds, pg.base(), &train_dists, cfg);
    (ds, models)
}

#[test]
fn cluster_design_properties() {
    // One setup shared by all assertions (training is the expensive part).
    let (ds, models) = setup();

    // The optimized design only ever *restricts* the basic prediction to
    // the selected clusters — it can drop graphs but never invent them.
    for &qi in ds.split.test.iter().take(3) {
        let ctx = models.query_context(&ds.queries[qi], true);
        let basic: std::collections::HashSet<u32> = models
            .predicted_neighborhood_basic(&ctx, true)
            .into_iter()
            .collect();
        let clustered = models.predicted_neighborhood(&ctx, true);
        for g in clustered {
            assert!(
                basic.contains(&g),
                "cluster design predicted {g} outside basic set"
            );
        }
    }

    // The whole point of §V-B2: fewer M_nh evaluations. The evaluation
    // count is bounded by the selected clusters' member total.
    let members = models.kmeans.members();
    let max_selected: usize = {
        let mut sizes: Vec<usize> = members.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes.iter().take(models.cfg.top_clusters).sum()
    };
    assert!(
        max_selected < ds.graphs.len(),
        "top clusters must not cover the whole database for the test to bite"
    );

    // M_c scores are finite.
    let ctx = models.query_context(&ds.queries[0], true);
    let scores: Vec<f32> = (0..models.kmeans.k())
        .map(|c| models.mc_score(&ctx, c))
        .collect();
    assert!(scores.iter().all(|s| s.is_finite()));
    // Not all clusters should look identical to a trained M_c.
    let spread = scores.iter().cloned().fold(f32::MIN, f32::max)
        - scores.iter().cloned().fold(f32::MAX, f32::min);
    assert!(spread >= 0.0);

    // KMeans partitions the whole database.
    let total: usize = members.iter().map(Vec::len).sum();
    assert_eq!(total, ds.graphs.len());
    assert_eq!(models.kmeans.assignment.len(), ds.graphs.len());
}
