//! End-to-end training of the LAN models on a tiny dataset.

use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_models::{LanModels, LearnedRanker, ModelConfig};
use lan_pg::np_route::{np_route, NeighborRanker};
use lan_pg::{beam_search, DistCache, PairCache, PgConfig, ProximityGraph};

fn tiny_setup() -> (Dataset, ProximityGraph, Vec<Vec<f64>>, LanModels) {
    let spec = DatasetSpec::syn()
        .with_graphs(60)
        .with_queries(20)
        .with_metric(GedMethod::Hungarian);
    let ds = Dataset::generate(spec);
    let pair_fn = |a: u32, b: u32| ds.pair_distance(a, b);
    let pairs = PairCache::new(&pair_fn);
    let pg = ProximityGraph::build(ds.graphs.len(), &pairs, &PgConfig::new(4));
    let train_dists: Vec<Vec<f64>> = ds
        .split
        .train
        .iter()
        .map(|&qi| {
            (0..ds.graphs.len() as u32)
                .map(|g| ds.distance(&ds.queries[qi], g))
                .collect()
        })
        .collect();
    let cfg = ModelConfig {
        embed_dim: 8,
        epochs: 2,
        max_samples_per_epoch: 200,
        nh_cover_k: 10,
        clusters: 4,
        top_clusters: 2,
        mlp_hidden: 8,
        ..ModelConfig::default()
    };
    let (models, report) = LanModels::train(&ds, pg.base(), &train_dists, cfg);
    assert!(report.gamma_star > 0.0, "gamma* must be positive");
    assert!(report.nh_loss.is_finite());
    assert!(report.rk_loss.is_finite());
    (ds, pg, train_dists, models)
}

#[test]
fn training_pipeline_end_to_end() {
    let (ds, pg, _train_dists, models) = tiny_setup();

    // Query context + pair embeddings behave.
    let q = &ds.queries[ds.split.test[0]];
    let ctx_plain = models.query_context(q, false);
    let ctx_cg = models.query_context(q, true);
    let p1 = models.pair_embedding(&ctx_plain, 0, false);
    let p2 = models.pair_embedding(&ctx_cg, 0, true);
    assert_eq!(p1.len(), 2 * models.cfg.embed_dim);
    // Theorem 2 end-to-end: CG inference equals plain inference.
    let diff = p1
        .iter()
        .zip(&p2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(diff < 1e-3, "CG and plain pair embeddings differ by {diff}");

    // Ranker batches partition the neighbor set.
    let node = 0u32;
    let neighbors = pg.base()[0].clone();
    let d_node = ds.distance(q, node);
    let batches = models.rank_batches(&ctx_cg, node, &neighbors, d_node, true);
    let mut flat: Vec<u32> = batches.iter().flatten().copied().collect();
    flat.sort_unstable();
    let mut expect = neighbors.clone();
    expect.sort_unstable();
    assert_eq!(flat, expect, "batches must partition the neighbors");

    // Outside the neighborhood: a single batch (no pruning).
    let far = models.rank_batches(&ctx_cg, node, &neighbors, models.gamma_star + 100.0, true);
    assert_eq!(far.len(), 1);
    assert_eq!(far[0].len(), neighbors.len());

    // Predicted neighborhood produces some candidates and only valid ids.
    let nh = models.predicted_neighborhood(&ctx_cg, true);
    assert!(nh.iter().all(|&g| (g as usize) < ds.graphs.len()));

    // The learned ranker drives np_route to sane results.
    let qd = |g: u32| ds.distance(q, g);
    let cache = DistCache::new(&qd);
    let entry = pg.hnsw_entry(&cache);
    let ranker = LearnedRanker::new(&models, &ctx_cg, true);
    let res = np_route(pg.base(), &cache, &ranker, &[entry], 8, 5, 1.0);
    assert_eq!(res.results.len(), 5);
    assert!(res.results.windows(2).all(|w| w[0].0 <= w[1].0));

    // Compare against the exhaustive baseline: learned pruning should not
    // blow up NDC beyond the baseline (it may explore slightly differently).
    let cache_bs = DistCache::new(&qd);
    let bs = beam_search(pg.base(), &cache_bs, &[entry], 8, 5);
    assert!(
        res.ndc <= bs.ndc * 2,
        "np ndc {} vs baseline {}",
        res.ndc,
        bs.ndc
    );

    // The per-query timer accumulated inference time.
    assert!(ctx_cg.gnn_time().as_nanos() > 0);
}

#[test]
fn ranker_trait_object_usage() {
    let (ds, pg, _td, models) = tiny_setup();
    let q = &ds.queries[0];
    let ctx = models.query_context(q, false);
    let ranker = LearnedRanker::new(&models, &ctx, false);
    let batches = ranker.rank(1, &pg.base()[1], 0.0);
    let total: usize = batches.iter().map(Vec::len).sum();
    assert_eq!(total, pg.base()[1].len());
}

#[test]
fn nh_precision_is_meaningful() {
    let (ds, _pg, _td, models) = tiny_setup();
    let (precision, recall) = models.nh_precision_on(&ds, &ds.split.val);
    // Loose sanity: both are probabilities; on this tiny setup the model
    // should do clearly better than predicting nothing.
    assert!((0.0..=1.0).contains(&precision));
    assert!((0.0..=1.0).contains(&recall));
}
