//! Hermetic stand-in for the subset of crates.io `rand` 0.8 this workspace
//! uses — the build container has no network access and no vendored
//! registry, so external crates are replaced by local shims via
//! `[patch.crates-io]` (workspace root `Cargo.toml`).
//!
//! Implemented surface (checked against every call site in the repo):
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed and statistically solid for tests and experiments, but the
//! *streams differ from real `rand`*: seeds pick different (equally valid)
//! random instances than crates.io rand would. Nothing in the repo encodes
//! expectations about specific draws, only about per-seed determinism.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the repo only ever seeds from a `u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples a value of `Self` from a range, given a generator.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128 + if inclusive { 1 } else { 0 };
                assert!(lo_w < hi_w, "cannot sample empty range {lo}..{hi}");
                let span = (hi_w - lo_w) as u128;
                // Modulo reduction: bias is < 2^-64 per draw for the spans
                // this workspace uses — irrelevant for tests/experiments.
                let v = ((rng.next_u64() as u128) % span) as i128 + lo_w;
                v as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi),
                        "cannot sample empty range {lo}..{hi}");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// The range-argument abstraction of `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the shim's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low like real rand.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=6);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_distribution_covers_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (2_700..3_300).contains(&hits),
            "gen_bool(0.3) hit {hits}/10000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 items should not be identity");
        assert_eq!([7u32; 0].as_slice().choose(&mut rng), None);
    }
}
