//! Hermetic stand-in for the subset of crates.io `proptest` 1.x this
//! workspace uses — the build container has no network access, so external
//! crates are replaced by local shims via `[patch.crates-io]`.
//!
//! Implemented surface (checked against every call site in the repo):
//! the `proptest!` macro with an optional `#![proptest_config(...)]` inner
//! attribute, `prop_assert!` / `prop_assert_eq!`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `Strategy::prop_map`,
//! `proptest::collection::vec`, and `prop::sample::select`.
//!
//! Semantics: each property runs `cases` times over deterministic,
//! seed-derived random inputs (seeded from the property's name and the
//! case index, so failures reproduce across runs and machines). There is
//! **no shrinking** — a failing case reports its case index and panics
//! with the underlying assertion message.

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the property name and case index so every run of every
    /// machine replays the identical case sequence.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derived strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                ((rng.next_u64() as u128 % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2.0 - 1.0) as f32
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size argument of [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy of `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() as usize) % self.options.len()].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// The `prop::` alias module the prelude re-exports.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs one property over `cases` deterministic inputs. Used by the
/// `proptest!` expansion; not part of the public proptest API.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, cases: u32, mut body: F) {
    for case in 0..cases {
        let mut rng = TestRng::deterministic(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("proptest shim: property '{name}' failed at case {case}/{cases} (deterministic; rerun reproduces it)");
            std::panic::resume_unwind(payload);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in 1u8..=4, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..6, 1..12)) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(v.iter().all(|&x| x < 6));
        }

        #[test]
        fn select_draws_from_options(y in prop::sample::select(vec![5usize, 10, 20])) {
            prop_assert!([5, 10, 20].contains(&y));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        for case in 0..5 {
            let mut rng = crate::TestRng::deterministic("x", case);
            first.push(rng.next_u64());
        }
        for case in 0..5 {
            let mut rng = crate::TestRng::deterministic("x", case);
            assert_eq!(first[case as usize], rng.next_u64());
        }
    }
}
