//! Hermetic stand-in for the subset of crates.io `criterion` 0.5 this
//! workspace uses — the build container has no network access, so external
//! crates are replaced by local shims via `[patch.crates-io]`.
//!
//! Implemented surface (checked against every bench in `crates/bench`):
//! `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId::{new,
//! from_parameter}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed iterations; mean and min wall-clock per iteration
//! are printed to stdout. No statistics beyond that, no HTML reports, no
//! CLI filtering — just enough to run `cargo bench` offline and get
//! honest timings.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after 3 warm-up runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, label));
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkLabel>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = id.into().0;
        self.run(label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkLabel>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.into().0;
        self.run(label, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and `BenchmarkId`s at bench call sites.
pub struct BenchmarkLabel(String);

impl From<&str> for BenchmarkLabel {
    fn from(s: &str) -> Self {
        BenchmarkLabel(s.to_string())
    }
}

impl From<String> for BenchmarkLabel {
    fn from(s: String) -> Self {
        BenchmarkLabel(s)
    }
}

impl From<BenchmarkId> for BenchmarkLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkLabel(id.label)
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkLabel>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = id.into().0;
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&label);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 64).label, "build/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut count = 0u32;
        group.bench_function("inc", |b| {
            b.iter(|| count += 1);
        });
        group.finish();
        // 3 warm-up + 5 timed iterations.
        assert_eq!(count, 8);
    }

    #[test]
    fn group_sample_size_overrides_config() {
        let mut c = Criterion::default().sample_size(50);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut count = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| count += x);
        });
        // (3 warm-up + 2 timed) * 7.
        assert_eq!(count, 35);
    }
}
