//! The LAN system: learning-based approximate k-NN search in graph
//! databases (Peng et al., ICDE 2022).
//!
//! * [`index`] — offline construction: proximity graph, training-distance
//!   matrix, model training, database CGs;
//! * [`query`] — online evaluation: LAN (learned initial selection +
//!   neighbor-pruned routing with CG acceleration) and every
//!   ablation/baseline combination the paper measures;
//! * [`l2route`] — the L2route baseline [28] on GIN embeddings;
//! * [`harness`] — recall–QPS curves, time breakdowns, and the
//!   interpolation helpers used by the figure-regeneration binaries.
//!
//! Queries run under an optional [`QueryBudget`] (NDC cap, wall-clock
//! deadline, hop cap) with cooperative cancellation across shards and
//! graceful degradation — see `lan_pg::budget` and the
//! `search_with_budget` / `search_budgeted` / `search_par_budgeted`
//! entry points. Deterministic fault injection for distance computations
//! lives in `lan_pg::faults` (`LAN_FAULTS`).
//!
//! # Quickstart
//!
//! ```no_run
//! use lan_core::{LanConfig, LanIndex};
//! use lan_datasets::{Dataset, DatasetSpec};
//!
//! let dataset = Dataset::generate(DatasetSpec::aids().with_graphs(200));
//! let index = LanIndex::build(dataset, LanConfig::default());
//! let query = index.dataset.queries[0].clone();
//! let out = index.search(&query, 10, 20);
//! println!("top-10: {:?}, NDC = {}", out.results, out.ndc);
//! ```

pub mod harness;
pub mod index;
pub mod l2route;
pub mod query;
pub mod sharded;
pub mod store;

pub use harness::{qps_at_recall, Breakdown, CurvePoint};
pub use index::{LanConfig, LanIndex, QuantConfig};
pub use l2route::L2RouteIndex;
pub use lan_gnn::QuantMode;
pub use lan_pg::budget::{BudgetCtx, QueryBudget, Termination};
pub use query::{InitStrategy, QueryOutcome, RouteStrategy, SearchShared};
pub use sharded::ShardedLanIndex;
