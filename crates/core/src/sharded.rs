//! Sharded (distributed-style) k-ANN search — the paper's protocol for
//! large databases (§VII-D: "we randomly split the dataset into equal-size
//! sub-datasets and sequentially perform k-ANN search on each sub-dataset")
//! and the conclusion's future-work direction, made a first-class citizen.
//!
//! Each shard is a complete [`LanIndex`] (its own proximity graph, models,
//! and CGs) over a slice of the database; a query runs on every shard and
//! the per-shard top-k are merged. Shard-local graph ids are remapped back
//! to global database ids.

use crate::index::{LanConfig, LanIndex};
use crate::query::{InitStrategy, QueryOutcome, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::Graph;
use std::time::Instant;

/// A database partitioned into independently indexed shards.
pub struct ShardedLanIndex {
    pub shards: Vec<LanIndex>,
    /// `global_ids[s][local]` = global database id of shard `s`'s graph
    /// `local`.
    pub global_ids: Vec<Vec<u32>>,
}

impl ShardedLanIndex {
    /// Splits `dataset` into `num_shards` contiguous equal-size shards and
    /// builds one LAN index per shard. Every shard reuses the dataset's
    /// query workload (models are trained per shard against its own
    /// sub-database).
    pub fn build(dataset: &Dataset, cfg: &LanConfig, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let n = dataset.graphs.len();
        assert!(num_shards <= n, "more shards than graphs");
        let chunk = n.div_ceil(num_shards);
        let mut shards = Vec::with_capacity(num_shards);
        let mut global_ids = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let lo = s * chunk;
            let hi = ((s + 1) * chunk).min(n);
            let ids: Vec<u32> = (lo as u32..hi as u32).collect();
            let sub = Dataset {
                spec: DatasetSpec {
                    num_graphs: hi - lo,
                    ..dataset.spec.clone()
                },
                graphs: dataset.graphs[lo..hi].to_vec(),
                queries: dataset.queries.clone(),
                split: dataset.split.clone(),
            };
            shards.push(LanIndex::build(sub, cfg.clone()));
            global_ids.push(ids);
        }
        ShardedLanIndex { shards, global_ids }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total indexed graphs across shards.
    pub fn len(&self) -> usize {
        self.global_ids.iter().map(Vec::len).sum()
    }

    /// True when no graphs are indexed (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequential k-ANN over every shard with merged global results
    /// (the paper's sub-database protocol). NDC and times accumulate.
    pub fn search(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> QueryOutcome {
        let t0 = Instant::now();
        let mut merged: Vec<(f64, u32)> = Vec::new();
        let mut ndc = 0usize;
        let mut distance_time = std::time::Duration::ZERO;
        let mut gnn_time = std::time::Duration::ZERO;
        for (s, shard) in self.shards.iter().enumerate() {
            let out = shard.search_with(q, k, b, init, route, seed ^ s as u64);
            ndc += out.ndc;
            distance_time += out.distance_time;
            gnn_time += out.gnn_time;
            merged.extend(
                out.results
                    .into_iter()
                    .map(|(d, local)| (d, self.global_ids[s][local as usize])),
            );
        }
        merged.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        merged.truncate(k);
        QueryOutcome {
            results: merged,
            ndc,
            total_time: t0.elapsed(),
            distance_time,
            gnn_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_models::ModelConfig;
    use lan_pg::PgConfig;

    fn tiny_cfg() -> LanConfig {
        LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 1,
                max_samples_per_epoch: 80,
                nh_cover_k: 6,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
        }
    }

    #[test]
    fn sharded_search_merges_globally() {
        let dataset = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(60)
                .with_queries(8)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let sharded = ShardedLanIndex::build(&dataset, &tiny_cfg(), 3);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.len(), 60);

        let q = dataset.queries[0].clone();
        // Beam >= shard size: each shard's connected base layer is fully
        // explored, so the merge must be exact.
        let out = sharded.search(
            &q,
            5,
            32,
            InitStrategy::HnswIs,
            RouteStrategy::HnswRoute,
            0,
        );
        assert_eq!(out.results.len(), 5);
        assert!(out.results.windows(2).all(|w| w[0].0 <= w[1].0));
        // Global ids must span the whole database range, not one shard.
        assert!(out.results.iter().all(|&(_, id)| (id as usize) < 60));

        // Sharded exhaustive search must match the single-index ground
        // truth distances (every shard scans its slice thoroughly at a
        // beam this large relative to shard size).
        let gt = dataset.ground_truth_knn(&q, 5);
        let d_merged: Vec<f64> = out.results.iter().map(|&(d, _)| d).collect();
        let d_truth: Vec<f64> = gt.iter().map(|&(d, _)| d).collect();
        assert_eq!(d_merged, d_truth, "sharded merge lost quality");
    }

    #[test]
    #[should_panic(expected = "more shards than graphs")]
    fn too_many_shards_rejected() {
        let dataset = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(3)
                .with_queries(2)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let _ = ShardedLanIndex::build(&dataset, &tiny_cfg(), 10);
    }
}
