//! Sharded (distributed-style) k-ANN search — the paper's protocol for
//! large databases (§VII-D: "we randomly split the dataset into equal-size
//! sub-datasets and sequentially perform k-ANN search on each sub-dataset")
//! and the conclusion's future-work direction, made a first-class citizen.
//!
//! Each shard is a complete [`LanIndex`] (its own proximity graph, models,
//! and CGs) over a slice of the database; a query runs on every shard and
//! the per-shard top-k are merged. Shard-local graph ids are remapped back
//! to global database ids.

use crate::index::{LanConfig, LanIndex};
use crate::query::{InitStrategy, QueryOutcome, RouteStrategy, SearchShared};
use lan_datasets::{Dataset, DatasetSpec, WorkloadSplit};
use lan_graph::Graph;
use lan_obs::explain::{BudgetExplain, QueryExplain, TierBreakdown, TimelineEvent};
use lan_pg::budget::{BudgetCtx, QueryBudget, Termination};
use std::time::Instant;

/// A database partitioned into independently indexed shards.
pub struct ShardedLanIndex {
    pub shards: Vec<LanIndex>,
    /// `global_ids[s][local]` = global database id of shard `s`'s graph
    /// `local`.
    pub global_ids: Vec<Vec<u32>>,
}

impl ShardedLanIndex {
    /// Splits `dataset` into `num_shards` contiguous equal-size shards and
    /// builds one LAN index per shard, in parallel across shards (models
    /// are trained per shard against its own sub-database).
    ///
    /// Each shard receives a *slim* query workload — only the train and
    /// validation query graphs, with the split indices remapped — instead
    /// of a clone of the full workload: training touches nothing else, and
    /// test queries arrive by reference at search time.
    pub fn build(dataset: &Dataset, cfg: &LanConfig, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let n = dataset.graphs.len();
        assert!(num_shards <= n, "more shards than graphs");
        // Global ids are u32; the `lo as u32..hi as u32` remap below would
        // silently wrap past that, aliasing shards onto the same ids.
        assert!(
            n <= u32::MAX as usize + 1,
            "database of {n} objects exceeds the u32 global-id space"
        );
        let chunk = n.div_ceil(num_shards);

        let train_queries: Vec<Graph> = dataset
            .split
            .train
            .iter()
            .map(|&qi| dataset.queries[qi].clone())
            .collect();
        let val_queries: Vec<Graph> = dataset
            .split
            .val
            .iter()
            .map(|&qi| dataset.queries[qi].clone())
            .collect();
        let slim_queries: Vec<Graph> = train_queries.iter().chain(&val_queries).cloned().collect();
        let slim_split = WorkloadSplit {
            train: (0..train_queries.len()).collect(),
            val: (train_queries.len()..slim_queries.len()).collect(),
            test: Vec::new(),
        };

        let ranges: Vec<(usize, usize)> = (0..num_shards)
            .map(|s| (s * chunk, ((s + 1) * chunk).min(n)))
            .collect();
        let shards: Vec<LanIndex> =
            lan_par::par_map_dyn(&ranges, lan_par::Grain::Fine, |&(lo, hi)| {
                let sub = Dataset {
                    spec: DatasetSpec {
                        num_graphs: hi - lo,
                        ..dataset.spec.clone()
                    },
                    graphs: dataset.graphs[lo..hi].to_vec(),
                    queries: slim_queries.clone(),
                    split: slim_split.clone(),
                };
                LanIndex::build(sub, cfg.clone())
            });
        let global_ids = ranges
            .into_iter()
            .map(|(lo, hi)| (lo as u32..hi as u32).collect())
            .collect();
        ShardedLanIndex { shards, global_ids }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total indexed graphs across shards.
    pub fn len(&self) -> usize {
        self.global_ids.iter().map(Vec::len).sum()
    }

    /// True when no graphs are indexed (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequential k-ANN over every shard with merged global results
    /// (the paper's sub-database protocol). NDC and times accumulate.
    pub fn search(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> QueryOutcome {
        self.search_budgeted(q, k, b, init, route, seed, &QueryBudget::unlimited())
    }

    /// [`ShardedLanIndex::search`] under a query budget. All shards share
    /// one [`BudgetCtx`], so the NDC cap is global across the query — and
    /// once one shard exhausts it, the remaining shards are skipped
    /// entirely (their best-so-far is simply absent from the merge).
    /// Unlimited budgets are bit-identical to [`ShardedLanIndex::search`].
    #[allow(clippy::too_many_arguments)]
    pub fn search_budgeted(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        budget: &QueryBudget,
    ) -> QueryOutcome {
        if lan_obs::explain::enabled() {
            let (out, ex) = self.search_explain_budgeted(q, k, b, init, route, seed, budget);
            lan_obs::explain::emit(&ex);
            return out;
        }
        let t0 = Instant::now();
        let ctx = BudgetCtx::new(budget);
        let mut per_shard: Vec<QueryOutcome> = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            if ctx.cancelled() {
                break;
            }
            per_shard.push(shard.search_with_budget(q, k, b, init, route, seed ^ s as u64, &ctx));
        }
        self.merge_shard_outcomes(per_shard, k, t0, ctx.termination())
    }

    /// [`ShardedLanIndex::search`] that additionally returns the merged
    /// EXPLAIN plan: one sub-plan per searched shard (skipped shards are
    /// absent), tier/NDC/hit counts summed, and a `shard.N` timeline entry
    /// per shard giving the cumulative query NDC and the global wall-clock
    /// offset at which that shard finished.
    pub fn search_explain(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> (QueryOutcome, QueryExplain) {
        self.search_explain_budgeted(q, k, b, init, route, seed, &QueryBudget::unlimited())
    }

    /// [`ShardedLanIndex::search_explain`] under a query budget.
    #[allow(clippy::too_many_arguments)]
    pub fn search_explain_budgeted(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        budget: &QueryBudget,
    ) -> (QueryOutcome, QueryExplain) {
        let t0 = Instant::now();
        let ctx = BudgetCtx::new(budget);
        let mut per_shard: Vec<QueryOutcome> = Vec::with_capacity(self.shards.len());
        let mut plans: Vec<QueryExplain> = Vec::with_capacity(self.shards.len());
        let mut timeline: Vec<TimelineEvent> = Vec::with_capacity(self.shards.len());
        let mut ndc_so_far = 0u64;
        for (s, shard) in self.shards.iter().enumerate() {
            if ctx.cancelled() {
                break;
            }
            let (out, ex) =
                shard.search_explain_budgeted(q, k, b, init, route, seed ^ s as u64, &ctx);
            ndc_so_far += ex.ndc;
            timeline.push(TimelineEvent {
                stage: format!("shard.{s}"),
                ndc: ndc_so_far,
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
            plans.push(ex);
            per_shard.push(out);
        }
        let merged = self.merge_shard_outcomes(per_shard, k, t0, ctx.termination());
        let ex = merged_explain(&merged, k, b, init, route, seed, &ctx, plans, timeline);
        (merged, ex)
    }

    /// Parallel k-ANN: every shard searched concurrently, merged exactly
    /// like [`ShardedLanIndex::search`]. Results and total NDC are
    /// byte-identical to the sequential path (each shard's search is
    /// deterministic and shard-local, and the merge is order-independent);
    /// only `total_time` differs — it measures true wall-clock, so it
    /// shrinks with the worker count.
    pub fn search_par(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> QueryOutcome {
        self.search_par_budgeted(q, k, b, init, route, seed, &QueryBudget::unlimited())
    }

    /// [`ShardedLanIndex::search_par`] under a query budget: the shared
    /// [`BudgetCtx`] crosses the `lan-par` fan-out, so the NDC cap is a
    /// strict *global* bound (reservations are atomic) and the first
    /// exhausted shard cooperatively cancels its siblings mid-flight.
    ///
    /// Unlimited budgets stay bit-identical to the sequential path. With a
    /// *finite* budget the per-shard results depend on which shard's
    /// computations won the budget race, so parallel degraded results are
    /// best-so-far but not run-to-run deterministic — only the invariants
    /// (NDC ≤ cap, degraded tag set) are guaranteed.
    #[allow(clippy::too_many_arguments)]
    pub fn search_par_budgeted(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        budget: &QueryBudget,
    ) -> QueryOutcome {
        if lan_obs::explain::enabled() {
            let (out, ex) = self.search_par_explain_budgeted(q, k, b, init, route, seed, budget);
            lan_obs::explain::emit(&ex);
            return out;
        }
        let t0 = Instant::now();
        let ctx = BudgetCtx::new(budget);
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        // Worker threads have empty trace thread-locals; re-attach the
        // caller's traced query id so per-shard hops keep their `q`.
        let traced = lan_obs::trace::active_query();
        let per_shard: Vec<QueryOutcome> = lan_par::par_map_dyn(&idx, lan_par::Grain::Fine, |&s| {
            let _t = lan_obs::trace::propagate(traced);
            self.shards[s].search_with_budget(q, k, b, init, route, seed ^ s as u64, &ctx)
        });
        self.merge_shard_outcomes(per_shard, k, t0, ctx.termination())
    }

    /// [`ShardedLanIndex::search_par`] that additionally returns the
    /// merged EXPLAIN plan. Shards overlap in time under the parallel
    /// fan-out, so each `shard.N` timeline entry reports that shard's own
    /// wall-clock (its sub-plan `total_ns`) rather than a global offset;
    /// the cumulative NDC is accumulated in shard order.
    pub fn search_par_explain(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> (QueryOutcome, QueryExplain) {
        self.search_par_explain_budgeted(q, k, b, init, route, seed, &QueryBudget::unlimited())
    }

    /// [`ShardedLanIndex::search_par_explain`] under a query budget.
    #[allow(clippy::too_many_arguments)]
    pub fn search_par_explain_budgeted(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        budget: &QueryBudget,
    ) -> (QueryOutcome, QueryExplain) {
        let t0 = Instant::now();
        let ctx = BudgetCtx::new(budget);
        let idx: Vec<usize> = (0..self.shards.len()).collect();
        let traced = lan_obs::trace::active_query();
        let pairs: Vec<(QueryOutcome, QueryExplain)> =
            lan_par::par_map_dyn(&idx, lan_par::Grain::Fine, |&s| {
                let _t = lan_obs::trace::propagate(traced);
                self.shards[s].search_explain_budgeted(q, k, b, init, route, seed ^ s as u64, &ctx)
            });
        let mut per_shard: Vec<QueryOutcome> = Vec::with_capacity(pairs.len());
        let mut plans: Vec<QueryExplain> = Vec::with_capacity(pairs.len());
        let mut timeline: Vec<TimelineEvent> = Vec::with_capacity(pairs.len());
        let mut ndc_so_far = 0u64;
        for (s, (out, ex)) in pairs.into_iter().enumerate() {
            ndc_so_far += ex.ndc;
            timeline.push(TimelineEvent {
                stage: format!("shard.{s}"),
                ndc: ndc_so_far,
                elapsed_ns: ex.total_ns,
            });
            plans.push(ex);
            per_shard.push(out);
        }
        let merged = self.merge_shard_outcomes(per_shard, k, t0, ctx.termination());
        let ex = merged_explain(&merged, k, b, init, route, seed, &ctx, plans, timeline);
        (merged, ex)
    }

    /// One shard's slice of a fan-out query, executed through shard-shared
    /// serving resources ([`SearchShared`]). Applies the same per-shard
    /// seed derivation (`seed ^ s`) as every fan-out in this module, so a
    /// serving front-end that runs shards through independent workers and
    /// merges with [`ShardedLanIndex::merge_shard_outcomes`] reproduces
    /// [`ShardedLanIndex::search_budgeted`] bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn shard_search_budgeted_shared(
        &self,
        s: usize,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        shared: &SearchShared,
    ) -> QueryOutcome {
        self.shards[s].search_with_budget_shared(q, k, b, init, route, seed ^ s as u64, ctx, shared)
    }

    /// [`ShardedLanIndex::shard_search_budgeted_shared`] returning the
    /// shard's EXPLAIN sub-plan alongside the outcome.
    #[allow(clippy::too_many_arguments)]
    pub fn shard_search_explain_budgeted_shared(
        &self,
        s: usize,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        shared: &SearchShared,
    ) -> (QueryOutcome, QueryExplain) {
        self.shards[s].search_explain_budgeted_shared(
            q,
            k,
            b,
            init,
            route,
            seed ^ s as u64,
            ctx,
            shared,
        )
    }

    /// Merges per-shard outcomes (ordered by shard index) into one global
    /// outcome: local ids remapped through `global_ids`, NDC and the
    /// distance/GNN time components summed, `(distance, id)`-sorted top-k.
    /// Public so external fan-outs (the serving front-end) merge exactly
    /// like the in-process fan-outs above.
    pub fn merge_shard_outcomes(
        &self,
        per_shard: Vec<QueryOutcome>,
        k: usize,
        t0: Instant,
        termination: Termination,
    ) -> QueryOutcome {
        let mut merged: Vec<(f64, u32)> = Vec::new();
        let mut ndc = 0usize;
        let mut distance_time = std::time::Duration::ZERO;
        let mut gnn_time = std::time::Duration::ZERO;
        let track_shards = lan_obs::enabled();
        for (s, out) in per_shard.into_iter().enumerate() {
            if track_shards {
                lan_obs::counter(&lan_obs::names::shard_ndc(s)).add(out.ndc as u64);
            }
            ndc += out.ndc;
            distance_time += out.distance_time;
            gnn_time += out.gnn_time;
            merged.extend(
                out.results
                    .into_iter()
                    .map(|(d, local)| (d, self.global_ids[s][local as usize])),
            );
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        merged.truncate(k);
        QueryOutcome {
            results: merged,
            ndc,
            total_time: t0.elapsed(),
            distance_time,
            gnn_time,
            termination,
        }
    }
}

/// Assembles the fan-out's merged EXPLAIN plan: counts (NDC, hits, hops,
/// tiers) and the init/route/distance/GNN time components are summed
/// across the per-shard sub-plans (CPU time under the parallel fan-out),
/// `total_ns` is the true wall-clock of the whole fan-out, and the
/// sub-plans themselves ride along under `shards`.
#[allow(clippy::too_many_arguments)]
pub fn merged_explain(
    merged: &QueryOutcome,
    k: usize,
    b: usize,
    init: InitStrategy,
    route: RouteStrategy,
    seed: u64,
    ctx: &BudgetCtx,
    plans: Vec<QueryExplain>,
    timeline: Vec<TimelineEvent>,
) -> QueryExplain {
    let mut tiers = TierBreakdown::default();
    let mut init_ns = 0u64;
    let mut route_ns = 0u64;
    let mut cache_hits = 0u64;
    let mut hops = 0u64;
    for p in &plans {
        tiers.accumulate(&p.tiers);
        init_ns += p.init_ns;
        route_ns += p.route_ns;
        cache_hits += p.cache_hits;
        hops += p.hops;
    }
    let limits = ctx.limits();
    QueryExplain {
        query: seed,
        k,
        b,
        init: init.as_str().to_string(),
        route: route.as_str().to_string(),
        termination: merged.termination.as_str().to_string(),
        total_ns: merged.total_time.as_nanos() as u64,
        init_ns,
        route_ns,
        dist_ns: merged.distance_time.as_nanos() as u64,
        gnn_ns: merged.gnn_time.as_nanos() as u64,
        ndc: merged.ndc as u64,
        cache_hits,
        hops,
        tiers,
        budget: BudgetExplain {
            max_ndc: limits.max_ndc.map(|v| v as u64),
            deadline_ms: limits.deadline.map(|d| d.as_millis() as u64),
            max_hops: limits.max_hops.map(|v| v as u64),
            spent_ndc: ctx.spent() as u64,
        },
        timeline,
        shards: plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_models::ModelConfig;
    use lan_pg::PgConfig;

    fn tiny_cfg() -> LanConfig {
        LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 1,
                max_samples_per_epoch: 80,
                nh_cover_k: 6,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
            quant: crate::index::QuantConfig::default(),
        }
    }

    #[test]
    fn sharded_search_merges_globally() {
        let dataset = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(60)
                .with_queries(8)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let sharded = ShardedLanIndex::build(&dataset, &tiny_cfg(), 3);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.len(), 60);

        let q = dataset.queries[0].clone();
        // Beam >= shard size: each shard's connected base layer is fully
        // explored, so the merge must be exact.
        let out = sharded.search(&q, 5, 32, InitStrategy::HnswIs, RouteStrategy::HnswRoute, 0);
        assert_eq!(out.results.len(), 5);
        assert!(out.results.windows(2).all(|w| w[0].0 <= w[1].0));
        // Global ids must span the whole database range, not one shard.
        assert!(out.results.iter().all(|&(_, id)| (id as usize) < 60));

        // Sharded exhaustive search must match the single-index ground
        // truth distances (every shard scans its slice thoroughly at a
        // beam this large relative to shard size).
        let gt = dataset.ground_truth_knn(&q, 5);
        let d_merged: Vec<f64> = out.results.iter().map(|&(d, _)| d).collect();
        let d_truth: Vec<f64> = gt.iter().map(|&(d, _)| d).collect();
        assert_eq!(d_merged, d_truth, "sharded merge lost quality");
    }

    #[test]
    #[should_panic(expected = "more shards than graphs")]
    fn too_many_shards_rejected() {
        let dataset = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(3)
                .with_queries(2)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let _ = ShardedLanIndex::build(&dataset, &tiny_cfg(), 10);
    }
}
