//! Offline index construction: proximity graph + trained models + CGs.

use lan_datasets::Dataset;
use lan_models::{LanModels, ModelConfig, TrainReport};
use lan_pg::{PairCache, PgConfig, ProximityGraph};

/// Configuration of the whole LAN index.
#[derive(Debug, Clone)]
pub struct LanConfig {
    pub pg: PgConfig,
    pub model: ModelConfig,
    /// γ escalation step `d_s` for np_route (unit-cost GED → 1).
    pub ds: f64,
}

impl Default for LanConfig {
    fn default() -> Self {
        LanConfig {
            pg: PgConfig::new(6),
            model: ModelConfig::default(),
            ds: 1.0,
        }
    }
}

/// The built LAN index over a dataset.
pub struct LanIndex {
    pub dataset: Dataset,
    pub pg: ProximityGraph,
    pub models: LanModels,
    pub report: TrainReport,
    pub cfg: LanConfig,
    /// Pairwise distance computations spent building the PG.
    pub build_ndc: usize,
}

impl LanIndex {
    /// Builds the proximity graph, computes the training distance matrix,
    /// and trains every model. Entirely offline (paper §III-F).
    pub fn build(dataset: Dataset, cfg: LanConfig) -> Self {
        let _b_span = lan_obs::span("build");
        let pair_fn = |a: u32, b: u32| dataset.pair_distance(a, b);
        let pairs = PairCache::new(&pair_fn);
        let pg_span = lan_obs::span("build.pg");
        let pg = ProximityGraph::build(dataset.graphs.len(), &pairs, &cfg.pg);
        drop(pg_span);
        let build_ndc = pairs.computed();

        // Training distances: one row per training query, parallelized.
        let td_span = lan_obs::span("build.train_dists");
        let train_dists: Vec<Vec<f64>> = lan_par::par_map(&dataset.split.train, |&qi| {
            (0..dataset.graphs.len() as u32)
                .map(|g| dataset.distance(&dataset.queries[qi], g))
                .collect::<Vec<f64>>()
        });
        drop(td_span);

        let models_span = lan_obs::span("build.models");
        let (models, report) =
            LanModels::train(&dataset, pg.base(), &train_dists, cfg.model.clone());
        drop(models_span);
        LanIndex {
            dataset,
            pg,
            models,
            report,
            cfg,
            build_ndc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_datasets::DatasetSpec;
    use lan_models::ModelConfig;

    pub(crate) fn tiny_index() -> LanIndex {
        let ds = lan_datasets::Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(50)
                .with_queries(15)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let cfg = LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 2,
                max_samples_per_epoch: 150,
                nh_cover_k: 8,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
        };
        LanIndex::build(ds, cfg)
    }

    #[test]
    fn build_completes_and_is_consistent() {
        let idx = tiny_index();
        assert_eq!(idx.pg.len(), idx.dataset.graphs.len());
        assert!(idx.build_ndc > 0);
        assert!(idx.report.gamma_star > 0.0);
        assert_eq!(idx.models.db_cgs.len(), idx.dataset.graphs.len());
    }
}
