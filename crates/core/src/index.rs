//! Offline index construction: proximity graph + trained models + CGs.

use lan_datasets::Dataset;
use lan_gnn::QuantMode;
use lan_models::{LanModels, ModelConfig, TrainReport};
use lan_pg::{PairCache, PgConfig, ProximityGraph};

/// Configuration of the quantized prefilter tier at query time (the code
/// books themselves are always built at index time; this only selects
/// what queries do with them).
#[derive(Debug, Clone, Copy)]
pub struct QuantConfig {
    /// Surrogate mode routing prefilters with (`Off` disables the tier).
    pub mode: QuantMode,
    /// Safety margin of the routing prefilter: a candidate is skipped
    /// only when its calibrated prediction exceeds `tau·margin + slack`
    /// (see `lan_models::QuantPrefilter`). Must be ≥ 1.
    pub margin: f64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            mode: QuantMode::Off,
            margin: 1.5,
        }
    }
}

impl QuantConfig {
    /// Parses the `LAN_QUANT` environment knob as a `Result`: `off`
    /// (default), `binary`, `scalar`, with an optional `:margin` suffix
    /// (e.g. `scalar:2.0`; the margin must be a finite number ≥ 1). A
    /// malformed value — `binary:abc`, `fast`, `scalar:0.5` — is a typed
    /// [`lan_par::env::EnvError`] naming the offending value.
    pub fn try_from_env() -> Result<Self, lan_par::env::EnvError> {
        let parsed = lan_par::env::parse_var("LAN_QUANT", |s| {
            Self::parse(s)
                .ok_or_else(|| format!("expected off|binary|scalar[:margin>=1], got {s:?}"))
        })?;
        Ok(parsed.unwrap_or_default())
    }

    /// Total variant of [`QuantConfig::try_from_env`]: an env typo must
    /// not flip query semantics silently, so a malformed value prints one
    /// warning per process to stderr and falls back to the do-nothing
    /// default (tier off).
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(cfg) => cfg,
            Err(e) => {
                lan_par::env::warn_once(&e);
                Self::default()
            }
        }
    }

    /// Parses `mode[:margin]`; `None` on malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let (mode_s, margin_s) = match s.split_once(':') {
            // An explicit margin needs an explicit mode: ":2.0" is a typo,
            // not a request for the default tier.
            Some((m, _)) if m.trim().is_empty() => return None,
            Some((m, g)) => (m, Some(g)),
            None => (s, None),
        };
        let mode = QuantMode::parse(mode_s.trim())?;
        let margin = match margin_s {
            Some(g) => {
                let m: f64 = g.trim().parse().ok()?;
                if !m.is_finite() || m < 1.0 {
                    return None;
                }
                m
            }
            None => Self::default().margin,
        };
        Some(QuantConfig { mode, margin })
    }
}

/// Configuration of the whole LAN index.
#[derive(Debug, Clone)]
pub struct LanConfig {
    pub pg: PgConfig,
    pub model: ModelConfig,
    /// γ escalation step `d_s` for np_route (unit-cost GED → 1).
    pub ds: f64,
    /// Quantized prefilter tier (defaults to `LAN_QUANT`, read once at
    /// config construction; override programmatically to sweep modes and
    /// margins without environment races).
    pub quant: QuantConfig,
}

impl Default for LanConfig {
    fn default() -> Self {
        LanConfig {
            pg: PgConfig::new(6),
            model: ModelConfig::default(),
            ds: 1.0,
            quant: QuantConfig::from_env(),
        }
    }
}

/// The built LAN index over a dataset.
pub struct LanIndex {
    pub dataset: Dataset,
    pub pg: ProximityGraph,
    pub models: LanModels,
    pub report: TrainReport,
    pub cfg: LanConfig,
    /// Pairwise distance computations spent building the PG.
    pub build_ndc: usize,
}

impl LanIndex {
    /// Builds the proximity graph, computes the training distance matrix,
    /// and trains every model. Entirely offline (paper §III-F).
    pub fn build(dataset: Dataset, cfg: LanConfig) -> Self {
        // Pre-register the EXPLAIN/profiler metric families so exports list
        // them (zero-valued) even before the first explained query runs.
        lan_obs::explain::register_schema();
        lan_obs::profile::register_schema();
        lan_obs::trace::register_schema();
        let _b_span = lan_obs::span("build");
        let pair_fn = |a: u32, b: u32| dataset.pair_distance(a, b);
        let pairs = PairCache::new(&pair_fn);
        let pg_span = lan_obs::span("build.pg");
        let pg = ProximityGraph::build(dataset.graphs.len(), &pairs, &cfg.pg);
        drop(pg_span);
        lan_obs::mem::sample_peak_rss();
        let build_ndc = pairs.computed();

        // Training distances: one row per training query, parallelized.
        let td_span = lan_obs::span("build.train_dists");
        let train_dists: Vec<Vec<f64>> =
            lan_par::par_map_dyn(&dataset.split.train, lan_par::Grain::Fine, |&qi| {
                (0..dataset.graphs.len() as u32)
                    .map(|g| dataset.distance(&dataset.queries[qi], g))
                    .collect::<Vec<f64>>()
            });
        drop(td_span);

        let models_span = lan_obs::span("build.models");
        let (models, report) =
            LanModels::train(&dataset, pg.base(), &train_dists, cfg.model.clone());
        drop(models_span);
        lan_obs::mem::sample_peak_rss();
        LanIndex {
            dataset,
            pg,
            models,
            report,
            cfg,
            build_ndc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_datasets::DatasetSpec;
    use lan_models::ModelConfig;

    pub(crate) fn tiny_index() -> LanIndex {
        let ds = lan_datasets::Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(50)
                .with_queries(15)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        let cfg = LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 2,
                max_samples_per_epoch: 150,
                nh_cover_k: 8,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
            quant: QuantConfig::default(),
        };
        LanIndex::build(ds, cfg)
    }

    #[test]
    fn quant_env_reject_set_is_typed() {
        for bad in [
            "binary:abc",
            "bogus",
            "scalar:0.5",
            "binary:",
            "off:nan",
            ":2.0",
        ] {
            lan_par::testenv::with_env(&[("LAN_QUANT", Some(bad))], || {
                let err = QuantConfig::try_from_env()
                    .expect_err(&format!("LAN_QUANT={bad:?} must be rejected"));
                assert_eq!(err.key, "LAN_QUANT");
                assert_eq!(err.value, bad);
                // Total path never flips semantics: falls back to Off.
                lan_par::env::reset_warnings();
                let cfg = QuantConfig::from_env();
                assert_eq!(cfg.mode, QuantMode::Off);
            });
        }
        for (good, mode, margin) in [
            ("off", QuantMode::Off, 1.5),
            ("binary", QuantMode::Binary, 1.5),
            ("scalar:2.0", QuantMode::Scalar, 2.0),
            ("binary:1", QuantMode::Binary, 1.0),
        ] {
            lan_par::testenv::with_env(&[("LAN_QUANT", Some(good))], || {
                let cfg = QuantConfig::try_from_env().expect("valid LAN_QUANT");
                assert_eq!(cfg.mode, mode);
                assert_eq!(cfg.margin, margin);
            });
        }
        lan_par::testenv::with_env(&[("LAN_QUANT", None)], || {
            let cfg = QuantConfig::try_from_env().expect("unset LAN_QUANT");
            assert_eq!(cfg.mode, QuantMode::Off);
        });
    }

    #[test]
    fn build_completes_and_is_consistent() {
        let idx = tiny_index();
        assert_eq!(idx.pg.len(), idx.dataset.graphs.len());
        assert!(idx.build_ndc > 0);
        assert!(idx.report.gamma_star > 0.0);
        assert_eq!(idx.models.db_cgs.len(), idx.dataset.graphs.len());
    }
}
