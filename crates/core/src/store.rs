//! `LanIndex::save` / `LanIndex::open` — the persistent index store.
//!
//! A saved index is one `lan-store` container file (superblock, section
//! table, checksummed 64-byte-aligned sections — see `lan_store`). The
//! flat layout:
//!
//! | section   | contents                                         |
//! |-----------|--------------------------------------------------|
//! | `meta`    | `LanConfig` + `TrainReport` + `build_ndc`        |
//! | `dataset` | spec, database graphs (CSR + signatures), queries, split |
//! | `pg`      | HNSW layers (CSR per layer), levels, entry       |
//! | `models`  | trained weights, KMeans, γ\*, embeddings, quant  |
//!
//! A sharded index stores a `sharded.meta` section (shard count, database
//! size, per-shard global-id maps) plus the same four sections per shard
//! under a `shard.N.` prefix. The L2route baseline gets its own two-section
//! file (`l2.pg`, `l2.embeds`).
//!
//! `open` re-registers the same observability schemas `build` does, so a
//! loaded index produces identical EXPLAIN/profiler output — the
//! loaded==built bit-identity contract covers results, NDC, and tier
//! attribution (pinned by `tests/store_properties.rs`).

use crate::index::{LanConfig, LanIndex, QuantConfig};
use crate::l2route::L2RouteIndex;
use crate::sharded::ShardedLanIndex;
use lan_datasets::Dataset;
use lan_gnn::QuantMode;
use lan_models::{LanModels, ModelConfig, TrainReport};
use lan_obs::names;
use lan_pg::{PgConfig, ProximityGraph};
use lan_store::{Archive, Dec, Enc, StoreError, Writer};
use std::path::Path;
use std::time::Instant;

fn encode_quant_cfg(q: &QuantConfig, enc: &mut Enc) {
    enc.put_u8(match q.mode {
        QuantMode::Off => 0,
        QuantMode::Binary => 1,
        QuantMode::Scalar => 2,
    });
    enc.put_f64(q.margin);
}

fn decode_quant_cfg(dec: &mut Dec<'_>) -> Result<QuantConfig, StoreError> {
    let mode = match dec.get_u8()? {
        0 => QuantMode::Off,
        1 => QuantMode::Binary,
        2 => QuantMode::Scalar,
        t => return Err(StoreError::corrupt(format!("unknown quant mode tag {t}"))),
    };
    let margin = dec.get_f64()?;
    Ok(QuantConfig { mode, margin })
}

fn encode_pg_cfg(p: &PgConfig, enc: &mut Enc) {
    enc.put_u64(p.m as u64);
    enc.put_u64(p.ef_construction as u64);
    enc.put_f64(p.ml);
    enc.put_u64(p.seed);
}

fn decode_pg_cfg(dec: &mut Dec<'_>) -> Result<PgConfig, StoreError> {
    let m = dec.get_u64()? as usize;
    let ef_construction = dec.get_u64()? as usize;
    let ml = dec.get_f64()?;
    let seed = dec.get_u64()?;
    if m == 0 {
        return Err(StoreError::corrupt("pg config has m = 0"));
    }
    Ok(PgConfig {
        m,
        ef_construction,
        ml,
        seed,
    })
}

fn encode_lan_cfg(cfg: &LanConfig, enc: &mut Enc) {
    encode_pg_cfg(&cfg.pg, enc);
    cfg.model.store_encode(enc);
    enc.put_f64(cfg.ds);
    encode_quant_cfg(&cfg.quant, enc);
}

fn decode_lan_cfg(dec: &mut Dec<'_>) -> Result<LanConfig, StoreError> {
    let pg = decode_pg_cfg(dec)?;
    let model = ModelConfig::store_decode(dec)?;
    let ds = dec.get_f64()?;
    let quant = decode_quant_cfg(dec)?;
    Ok(LanConfig {
        pg,
        model,
        ds,
        quant,
    })
}

fn encode_embeds(embeds: &[Vec<f32>], enc: &mut Enc) {
    let dim = embeds.first().map_or(0, |e| e.len());
    enc.put_u64(embeds.len() as u64);
    enc.put_u64(dim as u64);
    let flat: Vec<f32> = embeds.iter().flatten().copied().collect();
    enc.put_f32_slice(&flat);
}

fn decode_embeds(dec: &mut Dec<'_>) -> Result<Vec<Vec<f32>>, StoreError> {
    let n = dec.get_u64()? as usize;
    let dim = dec.get_u64()? as usize;
    let flat = dec.get_f32_slice()?;
    let expect = n
        .checked_mul(dim)
        .ok_or_else(|| StoreError::corrupt("embeds shape overflows"))?;
    if flat.len() != expect {
        return Err(StoreError::corrupt(format!(
            "embeds: {} values for {n}x{dim}",
            flat.len()
        )));
    }
    Ok(flat.chunks(dim.max(1)).map(|c| c.to_vec()).collect())
}

/// Appends one index's four sections to `w` under `prefix` (empty for a
/// flat index, `shard.N.` inside a sharded store).
fn add_index_sections(w: &mut Writer, prefix: &str, index: &LanIndex) {
    let mut meta = Enc::new();
    encode_lan_cfg(&index.cfg, &mut meta);
    index.report.store_encode(&mut meta);
    meta.put_u64(index.build_ndc as u64);
    w.add_section(&format!("{prefix}meta"), meta);

    let mut ds = Enc::new();
    index.dataset.store_encode(&mut ds);
    w.add_section(&format!("{prefix}dataset"), ds);

    let mut pg = Enc::new();
    index.pg.store_encode(&mut pg);
    w.add_section(&format!("{prefix}pg"), pg);

    let mut models = Enc::new();
    index.models.store_encode(&mut models);
    w.add_section(&format!("{prefix}models"), models);
}

/// Decodes one index's four sections from `a` under `prefix`.
fn decode_index_sections(a: &Archive, prefix: &str) -> Result<LanIndex, StoreError> {
    let mut meta = a.section(&format!("{prefix}meta"))?;
    let cfg = decode_lan_cfg(&mut meta)?;
    let report = TrainReport::store_decode(&mut meta)?;
    let build_ndc = meta.get_u64()? as usize;
    meta.expect_end()?;

    let mut ds = a.section(&format!("{prefix}dataset"))?;
    let dataset = Dataset::store_decode(&mut ds)?;
    ds.expect_end()?;

    let mut pgd = a.section(&format!("{prefix}pg"))?;
    let pg = ProximityGraph::store_decode(&mut pgd)?;
    pgd.expect_end()?;
    if pg.len() != dataset.graphs.len() {
        return Err(StoreError::corrupt(format!(
            "pg indexes {} nodes for {} graphs",
            pg.len(),
            dataset.graphs.len()
        )));
    }

    let mut md = a.section(&format!("{prefix}models"))?;
    let models = LanModels::store_decode(&mut md, &dataset)?;
    md.expect_end()?;

    Ok(LanIndex {
        dataset,
        pg,
        models,
        report,
        cfg,
        build_ndc,
    })
}

/// Mirrors `LanIndex::build`'s schema registration so a loaded index
/// exports the same zero-valued metric families and produces identical
/// EXPLAIN output.
fn register_schemas() {
    lan_obs::explain::register_schema();
    lan_obs::profile::register_schema();
    lan_obs::trace::register_schema();
}

fn record_save(bytes: u64, t0: Instant) {
    lan_obs::gauge(names::STORE_SAVE_NS).set(t0.elapsed().as_nanos() as i64);
    lan_obs::gauge(names::STORE_BYTES).set(bytes as i64);
}

fn record_load(bytes: u64, t0: Instant) {
    lan_obs::gauge(names::STORE_LOAD_NS).set(t0.elapsed().as_nanos() as i64);
    lan_obs::gauge(names::STORE_BYTES).set(bytes as i64);
}

impl LanIndex {
    /// Serializes the whole index to one container file (atomic: written
    /// to a temp file and renamed into place). Returns the bytes written.
    pub fn save(&self, path: &Path) -> Result<u64, StoreError> {
        let _s = lan_obs::span("store.save");
        let t0 = Instant::now();
        let mut w = Writer::new();
        add_index_sections(&mut w, "", self);
        let bytes = w.write(path)?;
        record_save(bytes, t0);
        Ok(bytes)
    }

    /// Loads an index saved by [`LanIndex::save`]. The loaded index
    /// answers queries bit-identically to the one that was saved: same
    /// results, same NDC, same EXPLAIN tier attribution.
    pub fn open(path: &Path) -> Result<LanIndex, StoreError> {
        register_schemas();
        let _s = lan_obs::span("store.load");
        let t0 = Instant::now();
        let a = Archive::open(path)?;
        let index = decode_index_sections(&a, "")?;
        record_load(a.total_bytes() as u64, t0);
        Ok(index)
    }
}

impl ShardedLanIndex {
    /// Serializes every shard plus the global-id maps into one container.
    pub fn save(&self, path: &Path) -> Result<u64, StoreError> {
        let _s = lan_obs::span("store.save");
        let t0 = Instant::now();
        let mut w = Writer::new();
        let mut meta = Enc::new();
        meta.put_u64(self.shards.len() as u64);
        meta.put_u64(self.len() as u64);
        for ids in &self.global_ids {
            meta.put_u32_slice(ids);
        }
        w.add_section("sharded.meta", meta);
        for (s, shard) in self.shards.iter().enumerate() {
            add_index_sections(&mut w, &format!("shard.{s}."), shard);
        }
        let bytes = w.write(path)?;
        record_save(bytes, t0);
        Ok(bytes)
    }

    /// Loads a sharded index saved by [`ShardedLanIndex::save`].
    pub fn open(path: &Path) -> Result<ShardedLanIndex, StoreError> {
        register_schemas();
        let _s = lan_obs::span("store.load");
        let t0 = Instant::now();
        let a = Archive::open(path)?;
        let mut meta = a.section("sharded.meta")?;
        let num_shards = meta.get_u64()? as usize;
        let total = meta.get_u64()? as usize;
        if num_shards == 0 {
            return Err(StoreError::corrupt("sharded store has zero shards"));
        }
        let mut global_ids: Vec<Vec<u32>> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let ids = meta.get_u32_slice()?;
            if ids.iter().any(|&g| g as usize >= total) {
                return Err(StoreError::corrupt(format!(
                    "shard {s} maps to a global id >= {total}"
                )));
            }
            global_ids.push(ids.to_vec());
        }
        meta.expect_end()?;
        if global_ids.iter().map(Vec::len).sum::<usize>() != total {
            return Err(StoreError::corrupt(
                "global-id maps do not cover the database",
            ));
        }
        let mut shards: Vec<LanIndex> = Vec::with_capacity(num_shards);
        for (s, ids) in global_ids.iter().enumerate() {
            let shard = decode_index_sections(&a, &format!("shard.{s}."))?;
            if shard.dataset.graphs.len() != ids.len() {
                return Err(StoreError::corrupt(format!(
                    "shard {s} holds {} graphs but maps {} ids",
                    shard.dataset.graphs.len(),
                    ids.len()
                )));
            }
            shards.push(shard);
        }
        record_load(a.total_bytes() as u64, t0);
        Ok(ShardedLanIndex { shards, global_ids })
    }
}

impl L2RouteIndex {
    /// Serializes the embedding-space HNSW and the embeddings.
    pub fn save(&self, path: &Path) -> Result<u64, StoreError> {
        let _s = lan_obs::span("store.save");
        let t0 = Instant::now();
        let mut w = Writer::new();
        let mut pg = Enc::new();
        self.pg.store_encode(&mut pg);
        w.add_section("l2.pg", pg);
        let mut em = Enc::new();
        encode_embeds(&self.embeds, &mut em);
        w.add_section("l2.embeds", em);
        let bytes = w.write(path)?;
        record_save(bytes, t0);
        Ok(bytes)
    }

    /// Loads an L2route index saved by [`L2RouteIndex::save`].
    pub fn open(path: &Path) -> Result<L2RouteIndex, StoreError> {
        let _s = lan_obs::span("store.load");
        let t0 = Instant::now();
        let a = Archive::open(path)?;
        let mut pgd = a.section("l2.pg")?;
        let pg = ProximityGraph::store_decode(&mut pgd)?;
        pgd.expect_end()?;
        let mut em = a.section("l2.embeds")?;
        let embeds = decode_embeds(&mut em)?;
        em.expect_end()?;
        if pg.len() != embeds.len() {
            return Err(StoreError::corrupt(format!(
                "l2 pg indexes {} nodes for {} embeddings",
                pg.len(),
                embeds.len()
            )));
        }
        record_load(a.total_bytes() as u64, t0);
        Ok(L2RouteIndex { pg, embeds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_codecs_round_trip() {
        let cfg = LanConfig {
            pg: PgConfig::new(5),
            model: ModelConfig::default(),
            ds: 2.0,
            quant: QuantConfig {
                mode: QuantMode::Scalar,
                margin: 1.75,
            },
        };
        let mut enc = Enc::new();
        encode_lan_cfg(&cfg, &mut enc);
        let mut w = Writer::new();
        w.add_section("c", enc);
        let bytes = w.to_bytes();
        let a = Archive::from_bytes(&bytes).unwrap();
        let mut dec = a.section("c").unwrap();
        let back = decode_lan_cfg(&mut dec).unwrap();
        dec.expect_end().unwrap();
        assert_eq!(back.pg.m, 5);
        assert_eq!(back.pg.ef_construction, cfg.pg.ef_construction);
        assert_eq!(back.ds.to_bits(), cfg.ds.to_bits());
        assert_eq!(back.quant.mode, QuantMode::Scalar);
        assert_eq!(back.quant.margin.to_bits(), cfg.quant.margin.to_bits());
        assert_eq!(back.model.seed, cfg.model.seed);
    }
}
