//! The L2route baseline [28], adapted to graph databases exactly as the
//! paper does: "we first convert graphs into embedding vectors and then use
//! L2route on the embedding vectors for k-ANN search".
//!
//! Graphs are embedded with the trained GIN embedder; the query retrieves a
//! candidate set by routing in L2 embedding space, then verifies the
//! candidates with true (counted) GED and returns the best `k`. Recall
//! against the GED ground truth is bounded by embedding quality, so high
//! recall demands a large candidate set — and therefore a large NDC. That
//! is the effect behind L2route's position in Fig. 5.

use crate::index::LanIndex;
use lan_graph::Graph;
use lan_obs::TimerCell;
use lan_pg::{beam_search, DistCache, PairCache, PgConfig, ProximityGraph};
use std::time::{Duration, Instant};

/// L2route's own index: an HNSW over the embedding vectors.
pub struct L2RouteIndex {
    pub pg: ProximityGraph,
    pub embeds: Vec<Vec<f32>>,
}

fn l2(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) as f64 * (x - y) as f64)
        .sum::<f64>()
        .sqrt()
}

impl L2RouteIndex {
    /// Builds the embedding-space proximity graph from the LAN index's
    /// trained embedder (vector distances are cheap; construction is fast).
    pub fn build(index: &LanIndex, m: usize) -> Self {
        let embeds = index.models.db_embeds.clone();
        let pair_fn = |a: u32, b: u32| l2(&embeds[a as usize], &embeds[b as usize]);
        let pairs = PairCache::new_uncounted(&pair_fn);
        let pg = ProximityGraph::build(embeds.len(), &pairs, &PgConfig::new(m));
        L2RouteIndex { pg, embeds }
    }

    /// Answers a k-ANN query: route in embedding space to collect
    /// `candidates` nearest vectors, then verify them with true GED.
    ///
    /// Returns `(results, ndc, total_time, distance_time)`.
    pub fn search(
        &self,
        index: &LanIndex,
        q: &Graph,
        k: usize,
        candidates: usize,
    ) -> (Vec<(f64, u32)>, usize, Duration, Duration) {
        let t0 = Instant::now();
        let qe = index.models.embed(q);
        // Cheap vector routing (uncounted: the paper's NDC counts *graph*
        // distance computations, which are the expensive operation).
        let vq = |id: u32| l2(&self.embeds[id as usize], &qe);
        let vcache = DistCache::new_uncounted(&vq);
        let entry = self.pg.hnsw_entry(&vcache);
        let cand = beam_search(
            self.pg.base(),
            &vcache,
            &[entry],
            candidates.max(k),
            candidates.max(k),
        );

        // Verification with true GED — this is the counted cost. The timer
        // is atomic because DistCache requires a Sync distance closure.
        let dist_timer = TimerCell::new();
        let qd = |id: u32| dist_timer.time(|| index.dataset.distance(q, id));
        let gcache = DistCache::new(&qd);
        let mut verified: Vec<(f64, u32)> =
            cand.ids().iter().map(|&id| (gcache.get(id), id)).collect();
        // total_cmp: a NaN distance (poisoned metric) sorts after every
        // finite candidate instead of scrambling the comparator.
        verified.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        verified.truncate(k);
        let ndc = gcache.ndc();
        drop(gcache);
        (verified, ndc, t0.elapsed(), dist_timer.total())
    }
}
