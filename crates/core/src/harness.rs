//! Shared experiment harness used by the `lan-bench` figure binaries and
//! the integration tests: recall–QPS curves, scalability sharding, and the
//! query-time breakdown.

use crate::index::LanIndex;
use crate::l2route::L2RouteIndex;
use crate::query::{InitStrategy, QueryOutcome, RouteStrategy};
use lan_obs::trace;
use lan_pg::budget::{BudgetCtx, QueryBudget, Termination};
use std::time::{Duration, Instant};

/// One point of a recall–QPS curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// The swept parameter (beam size b, or candidate count for L2route).
    pub param: usize,
    pub recall: f64,
    pub qps: f64,
    pub avg_ndc: f64,
}

/// Aggregated time breakdown over a query batch (Fig. 11).
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    pub total: Duration,
    pub distance: Duration,
    pub gnn: Duration,
}

impl Breakdown {
    pub fn add(&mut self, o: &QueryOutcome) {
        self.total += o.total_time;
        self.distance += o.distance_time;
        self.gnn += o.gnn_time;
    }

    /// Fraction of query time inside cross-graph learning.
    pub fn gnn_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.gnn.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Fraction of query time inside distance computation.
    pub fn distance_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.distance.as_secs_f64() / self.total.as_secs_f64()
        }
    }
}

/// Shared accumulation of a query batch: tie-aware recall, NDC, and the
/// time breakdown — one implementation for the sequential and parallel
/// harness paths (they must count identically for the determinism tests).
#[derive(Debug, Default)]
struct Aggregate {
    recall_sum: f64,
    ndc_sum: usize,
    breakdown: Breakdown,
}

impl Aggregate {
    fn add(&mut self, out: &QueryOutcome, truth: f64, k: usize) {
        self.recall_sum += lan_datasets::dataset::recall_at_k_ties(&out.results, truth, k);
        self.ndc_sum += out.ndc;
        self.breakdown.add(out);
    }

    /// Finishes the batch into a curve point. `wall` is the denominator of
    /// QPS: the summed per-query time for sequential runs, the true batch
    /// wall-clock for parallel runs.
    fn finish(self, param: usize, n_queries: usize, wall: Duration) -> (CurvePoint, Breakdown) {
        let n = n_queries.max(1) as f64;
        let point = CurvePoint {
            param,
            recall: self.recall_sum / n,
            qps: n / wall.as_secs_f64().max(1e-12),
            avg_ndc: self.ndc_sum as f64 / n,
        };
        (point, self.breakdown)
    }
}

/// Per-query ground truth: the true k-th NN distance (for tie-aware
/// recall), computed once and shared across sweeps.
pub fn ground_truths(index: &LanIndex, query_idx: &[usize], k: usize) -> Vec<f64> {
    query_idx
        .iter()
        .map(|&qi| {
            index
                .dataset
                .ground_truth_knn(&index.dataset.queries[qi], k)
                .last()
                .map(|&(d, _)| d)
                .unwrap_or(f64::INFINITY)
        })
        .collect()
}

/// Runs one method over the query set at a fixed beam size, returning the
/// curve point and the accumulated breakdown.
#[allow(clippy::too_many_arguments)]
pub fn run_point(
    index: &LanIndex,
    query_idx: &[usize],
    truths: &[f64],
    k: usize,
    b: usize,
    init: InitStrategy,
    route: RouteStrategy,
) -> (CurvePoint, Breakdown) {
    // The env budget is read once per batch; unset variables mean an
    // unlimited budget, which is guaranteed to change nothing.
    let budget = QueryBudget::from_env();
    let mut agg = Aggregate::default();
    for (i, &qi) in query_idx.iter().enumerate() {
        let q = &index.dataset.queries[qi];
        let _t = trace::query(qi as u64);
        let ctx = BudgetCtx::new(&budget);
        let out = index.search_with_budget(q, k, b, init, route, qi as u64, &ctx);
        agg.add(&out, truths[i], k);
    }
    let wall = agg.breakdown.total;
    agg.finish(b, query_idx.len(), wall)
}

/// The parallel counterpart of [`run_point`]: queries of the batch run
/// concurrently (worker count from `lan-par`, `LAN_THREADS` overrides) and
/// QPS is measured as true batch wall-clock throughput.
///
/// Every query keeps its sequential seed (`qi`), so per-query results,
/// recall, and NDC are identical to [`run_point`]; the reported breakdown
/// still sums per-query component times. The sequential path remains the
/// one to use for deterministic latency measurements — parallel per-query
/// `total_time` includes scheduling noise.
#[allow(clippy::too_many_arguments)]
pub fn run_point_parallel(
    index: &LanIndex,
    query_idx: &[usize],
    truths: &[f64],
    k: usize,
    b: usize,
    init: InitStrategy,
    route: RouteStrategy,
) -> (CurvePoint, Breakdown) {
    let budget = QueryBudget::from_env();
    let t0 = Instant::now();
    let outs: Vec<QueryOutcome> = lan_par::par_map_dyn(query_idx, lan_par::Grain::Fine, |&qi| {
        let q = &index.dataset.queries[qi];
        let _t = trace::query(qi as u64);
        // One context per query (not per batch): each query gets the full
        // budget, exactly like the sequential path above.
        let ctx = BudgetCtx::new(&budget);
        index.search_with_budget(q, k, b, init, route, qi as u64, &ctx)
    });
    let wall = t0.elapsed();

    let mut agg = Aggregate::default();
    for (i, out) in outs.iter().enumerate() {
        agg.add(out, truths[i], k);
    }
    agg.finish(b, query_idx.len(), wall)
}

/// A recall–QPS curve over a sweep of beam sizes.
#[allow(clippy::too_many_arguments)]
pub fn recall_qps_curve(
    index: &LanIndex,
    query_idx: &[usize],
    truths: &[f64],
    k: usize,
    beams: &[usize],
    init: InitStrategy,
    route: RouteStrategy,
) -> Vec<CurvePoint> {
    beams
        .iter()
        .map(|&b| run_point(index, query_idx, truths, k, b, init, route).0)
        .collect()
}

/// The L2route curve: the swept parameter is the verified-candidate count.
pub fn l2route_curve(
    index: &LanIndex,
    l2: &L2RouteIndex,
    query_idx: &[usize],
    truths: &[f64],
    k: usize,
    candidate_counts: &[usize],
) -> Vec<CurvePoint> {
    candidate_counts
        .iter()
        .map(|&c| {
            let mut agg = Aggregate::default();
            for (i, &qi) in query_idx.iter().enumerate() {
                let q = &index.dataset.queries[qi];
                let (results, ndc, t, dt) = l2.search(index, q, k, c);
                let out = QueryOutcome {
                    results,
                    ndc,
                    total_time: t,
                    distance_time: dt,
                    gnn_time: Duration::ZERO,
                    termination: Termination::Converged,
                };
                agg.add(&out, truths[i], k);
            }
            let wall = agg.breakdown.total;
            agg.finish(c, query_idx.len(), wall).0
        })
        .collect()
}

/// Interpolates the QPS a curve achieves at a target recall (the paper
/// reports speedups "at recall@50 = 0.95"). Returns `None` when the curve
/// never reaches the target.
pub fn qps_at_recall(curve: &[CurvePoint], target: f64) -> Option<f64> {
    // Walk points sorted by recall; linear interpolation in (recall, qps).
    // Non-finite points (NaN recall from an empty batch, infinite QPS from
    // a zero-wall-clock run) cannot be interpolated through — drop them
    // instead of letting NaN scramble the sort order.
    let mut pts: Vec<&CurvePoint> = curve
        .iter()
        .filter(|p| p.recall.is_finite() && p.qps.is_finite())
        .collect();
    pts.sort_by(|a, b| a.recall.total_cmp(&b.recall));
    if pts.is_empty() || pts.last().unwrap().recall < target {
        return None;
    }
    let mut prev = pts[0];
    if prev.recall >= target {
        return Some(prev.qps);
    }
    for p in pts.into_iter().skip(1) {
        if p.recall >= target {
            let span = (p.recall - prev.recall).max(1e-12);
            let t = (target - prev.recall) / span;
            return Some(prev.qps + t * (p.qps - prev.qps));
        }
        prev = p;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(recall: f64, qps: f64) -> CurvePoint {
        CurvePoint {
            param: 0,
            recall,
            qps,
            avg_ndc: 0.0,
        }
    }

    #[test]
    fn qps_interpolation() {
        let curve = vec![cp(0.8, 100.0), cp(0.9, 50.0), cp(1.0, 10.0)];
        assert_eq!(qps_at_recall(&curve, 0.7), Some(100.0));
        let mid = qps_at_recall(&curve, 0.95).unwrap();
        assert!((mid - 30.0).abs() < 1e-9);
        assert_eq!(qps_at_recall(&curve, 1.01), None);
        assert_eq!(qps_at_recall(&[], 0.5), None);
    }

    #[test]
    fn qps_interpolation_ignores_nan_points() {
        // A NaN recall point used to poison the sort (partial_cmp ties):
        // depending on its position it could land "above" every finite
        // point and be read as the curve maximum. It must be ignored.
        let curve = vec![
            cp(0.8, 100.0),
            cp(f64::NAN, 1e9),
            cp(1.0, 10.0),
            cp(0.9, f64::INFINITY),
        ];
        assert_eq!(qps_at_recall(&curve, 0.7), Some(100.0));
        let mid = qps_at_recall(&curve, 0.9).unwrap();
        assert!((mid - 55.0).abs() < 1e-9, "got {mid}");
        // An all-NaN curve never reaches any target.
        assert_eq!(qps_at_recall(&[cp(f64::NAN, 1.0)], 0.0), None);
    }

    #[test]
    fn breakdown_fractions() {
        let b = Breakdown {
            total: Duration::from_millis(100),
            distance: Duration::from_millis(60),
            gnn: Duration::from_millis(25),
        };
        assert!((b.gnn_fraction() - 0.25).abs() < 1e-9);
        assert!((b.distance_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(Breakdown::default().gnn_fraction(), 0.0);
    }
}
