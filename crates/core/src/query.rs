//! Online k-ANN query evaluation: LAN and its ablation/baseline variants.
//!
//! A query is a combination of an initial-node selection strategy (paper
//! Fig. 7: `LAN_IS`, `HNSW_IS`, `Rand_IS`) and a routing strategy (Fig. 6:
//! `LAN_Route` with or without CG acceleration, `HNSW_Route`), all measured
//! with NDC, wall-clock, and a time breakdown (Fig. 11: distance time vs
//! cross-graph learning time vs rest).

use crate::index::LanIndex;
use lan_graph::Graph;
use lan_models::LearnedRanker;
use lan_obs::{names, span, TimerCell};
use lan_pg::np_route::np_route;
use lan_pg::{beam_search, DistCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Initial-node selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Learned selection via `M_c` + `M_nh` + s-sampling (paper §V).
    LanIs,
    /// Greedy descent through the HNSW hierarchy.
    HnswIs,
    /// A uniformly random node.
    RandIs,
}

/// Routing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStrategy {
    /// `np_route` with the learned rankers; `use_cg` enables compressed
    /// GNN-graph inference (paper §VI).
    LanRoute { use_cg: bool },
    /// Algorithm 1 exhaustive beam search.
    HnswRoute,
}

/// Everything measured about one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// `(distance, id)` results, ascending.
    pub results: Vec<(f64, u32)>,
    /// Unique distance computations.
    pub ndc: usize,
    /// Total wall-clock of the query.
    pub total_time: Duration,
    /// Time inside distance (GED) computations.
    pub distance_time: Duration,
    /// Time inside GNN inference (cross-graph learning + heads).
    pub gnn_time: Duration,
}

impl QueryOutcome {
    pub fn ids(&self) -> Vec<u32> {
        self.results.iter().map(|&(_, id)| id).collect()
    }
}

impl LanIndex {
    /// Full LAN query: learned initial selection + learned-pruned routing
    /// with CG acceleration.
    pub fn search(&self, q: &Graph, k: usize, b: usize) -> QueryOutcome {
        self.search_with(
            q,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            0,
        )
    }

    /// The HNSW baseline: hierarchy entry + exhaustive beam routing.
    pub fn search_hnsw(&self, q: &Graph, k: usize, b: usize) -> QueryOutcome {
        self.search_with(q, k, b, InitStrategy::HnswIs, RouteStrategy::HnswRoute, 0)
    }

    /// Any combination of strategies (Figs. 5–7, 10). `seed` feeds the
    /// random choices (Rand_IS, the s-sample of LAN_IS).
    pub fn search_with(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> QueryOutcome {
        let t_start = Instant::now();
        let _q_span = span("query");
        lan_obs::counter(names::QUERY_COUNT).inc();
        // Atomic nanosecond cell instead of RefCell<Duration>: the closure
        // must be Sync because DistCache is shared across threads in-search.
        // TimerCell is ungated — QueryOutcome::distance_time stays identical
        // whether metrics are enabled or not.
        let dist_timer = TimerCell::new();
        let qd = |id: u32| dist_timer.time(|| self.dataset.distance(q, id));
        let cache = DistCache::new(&qd);
        self.models.gnn_timer.reset();

        let use_cg = match route {
            RouteStrategy::LanRoute { use_cg } => use_cg,
            // Only relevant when LAN_IS builds a context below.
            RouteStrategy::HnswRoute => true,
        };
        let needs_ctx =
            matches!(route, RouteStrategy::LanRoute { .. }) || init == InitStrategy::LanIs;
        let ctx = needs_ctx.then(|| self.models.query_context(q, use_cg));

        // --- Initial node selection. ---
        let init_span = span("query.init");
        let entries: Vec<u32> = match init {
            InitStrategy::HnswIs => vec![self.pg.hnsw_entry(&cache)],
            InitStrategy::RandIs => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9a7d);
                vec![rng.gen_range(0..self.pg.len()) as u32]
            }
            InitStrategy::LanIs => {
                let ctx = ctx.as_ref().expect("LAN_IS requires a query context");
                let nh = self.models.predicted_neighborhood(ctx, use_cg);
                if nh.is_empty() {
                    vec![self.pg.hnsw_entry(&cache)]
                } else {
                    // Sample s graphs from N̂_Q, compute their (counted)
                    // distances, keep the best one (paper §V-A).
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a41);
                    let s = self.cfg.model.init_samples.min(nh.len());
                    let mut picked: Vec<u32> = Vec::with_capacity(s);
                    while picked.len() < s {
                        let g = nh[rng.gen_range(0..nh.len())];
                        if !picked.contains(&g) {
                            picked.push(g);
                        }
                    }
                    let best = picked
                        .into_iter()
                        .min_by(|&a, &b| {
                            cache
                                .get(a)
                                .partial_cmp(&cache.get(b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        })
                        .expect("s >= 1");
                    vec![best]
                }
            }
        };

        drop(init_span);

        // --- Routing. ---
        let route_span = span("query.route");
        let route_result = match route {
            RouteStrategy::HnswRoute => beam_search(self.pg.base(), &cache, &entries, b, k),
            RouteStrategy::LanRoute { use_cg } => {
                let ctx = ctx.as_ref().expect("LAN_Route requires a query context");
                let ranker = LearnedRanker::new(&self.models, ctx, use_cg);
                np_route(self.pg.base(), &cache, &ranker, &entries, b, k, self.cfg.ds)
            }
        };
        drop(route_span);

        drop(cache);
        let distance_time = dist_timer.total();
        QueryOutcome {
            results: route_result.results,
            ndc: route_result.ndc,
            total_time: t_start.elapsed(),
            distance_time,
            gnn_time: self.models.gnn_timer.total(),
        }
    }

    /// Recall@k of a result id list against the brute-force ground truth.
    pub fn recall(&self, q: &Graph, result_ids: &[u32], k: usize) -> f64 {
        let truth = self.dataset.ground_truth_knn(q, k);
        let truth_ids: Vec<u32> = truth.iter().map(|&(_, id)| id).collect();
        lan_datasets::recall_at_k(result_ids, &truth_ids, k)
    }
}
