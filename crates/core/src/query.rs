//! Online k-ANN query evaluation: LAN and its ablation/baseline variants.
//!
//! A query is a combination of an initial-node selection strategy (paper
//! Fig. 7: `LAN_IS`, `HNSW_IS`, `Rand_IS`) and a routing strategy (Fig. 6:
//! `LAN_Route` with or without CG acceleration, `HNSW_Route`), all measured
//! with NDC, wall-clock, and a time breakdown (Fig. 11: distance time vs
//! cross-graph learning time vs rest).

use crate::index::LanIndex;
use lan_gnn::QuantMode;
use lan_graph::Graph;
use lan_models::{FusedScoreService, LearnedRanker, QuantPrefilter, QueryContext, SlabArena};
use lan_obs::explain::{BudgetExplain, QueryExplain, SolveTier, TierCounts, TimelineEvent};
use lan_obs::{names, span, TimerCell};
use lan_pg::budget::{budgeted_get, BudgetCtx, Termination};
use lan_pg::faults::{self, FaultMetrics, FaultPlan};
use lan_pg::np_route::np_route_prefiltered;
use lan_pg::{beam_search_budgeted, CandidatePrefilter, DistBound, DistCache, QueryDistance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard-scoped resources the serving path shares across co-batched
/// queries: the cross-query combining funnel for fused hop scoring, and
/// the arena pooling per-query pair slabs. Passing one `SearchShared` to
/// the `*_shared` entry points changes *how* work executes (fused
/// matmuls, recycled allocations) but never *what* is computed — results,
/// NDC, and EXPLAIN tier attribution stay bit-identical to the serial
/// entry points (property-tested in `tests/shared_equivalence.rs`).
pub struct SearchShared<'a> {
    /// The shard's combining funnel (all users share one `FusedHeads`).
    pub scorer: &'a FusedScoreService,
    /// The shard's pair-slab pool.
    pub arena: &'a Arc<SlabArena>,
}

/// Initial-node selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Learned selection via `M_c` + `M_nh` + s-sampling (paper §V).
    LanIs,
    /// Greedy descent through the HNSW hierarchy.
    HnswIs,
    /// A uniformly random node.
    RandIs,
}

impl InitStrategy {
    /// Stable lowercase name used in EXPLAIN plans and bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            InitStrategy::LanIs => "lan_is",
            InitStrategy::HnswIs => "hnsw_is",
            InitStrategy::RandIs => "rand_is",
        }
    }
}

/// Routing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStrategy {
    /// `np_route` with the learned rankers; `use_cg` enables compressed
    /// GNN-graph inference (paper §VI).
    LanRoute { use_cg: bool },
    /// Algorithm 1 exhaustive beam search.
    HnswRoute,
}

impl RouteStrategy {
    /// Stable lowercase name used in EXPLAIN plans and bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            RouteStrategy::LanRoute { use_cg: true } => "lan_route_cg",
            RouteStrategy::LanRoute { use_cg: false } => "lan_route",
            RouteStrategy::HnswRoute => "hnsw_route",
        }
    }
}

/// Everything measured about one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// `(distance, id)` results, ascending.
    pub results: Vec<(f64, u32)>,
    /// Unique distance computations.
    pub ndc: usize,
    /// Total wall-clock of the query.
    pub total_time: Duration,
    /// Time inside distance (GED) computations.
    pub distance_time: Duration,
    /// Time inside GNN inference (cross-graph learning + heads).
    pub gnn_time: Duration,
    /// How the query ended: [`Termination::Converged`] unless a budget
    /// bound it, in which case `results` are best-so-far.
    pub termination: Termination,
}

impl QueryOutcome {
    pub fn ids(&self) -> Vec<u32> {
        self.results.iter().map(|&(_, id)| id).collect()
    }
}

/// Stage-level measurements collected only when an EXPLAIN plan was
/// requested; the plain search path never allocates one.
#[derive(Default)]
struct StageTrace {
    init_ns: u64,
    route_ns: u64,
    cache_hits: u64,
    hops: u64,
    timeline: Vec<TimelineEvent>,
}

/// The per-query distance oracle: dataset GED behind the timing and
/// fault-injection layers. `distance_within` runs the threshold-gated GED
/// kernel cascade — routing results, NDC, and exploration stay
/// bit-identical to the plain oracle (the routers only prune bounds that
/// are provably invisible), while `ged.full_evals` drops. An active fault
/// plan pins every probe to the exact fault path: faults are keyed per
/// object, and a bound answered without running the primary computation
/// would dodge its scheduled fault.
struct DatasetOracle<'a> {
    dataset: &'a lan_datasets::Dataset,
    q: &'a Graph,
    seed: u64,
    dist_timer: &'a TimerCell,
    fault_plan: &'a Option<(FaultPlan, FaultMetrics)>,
}

impl QueryDistance for DatasetOracle<'_> {
    fn distance(&self, id: u32) -> f64 {
        self.dist_timer.time(|| match self.fault_plan {
            Some((plan, fm)) => faults::faulted_distance(
                plan,
                fm,
                self.seed,
                id,
                || self.dataset.distance(self.q, id),
                || self.dataset.distance_fallback(self.q, id),
            ),
            None => self.dataset.distance(self.q, id),
        })
    }

    fn distance_within(&self, id: u32, tau: f64) -> DistBound {
        if self.fault_plan.is_some() {
            return DistBound::Exact(self.distance(id));
        }
        self.dist_timer
            .time(|| match self.dataset.distance_within(self.q, id, tau) {
                lan_ged::GedBound::Exact(d) => DistBound::Exact(d),
                lan_ged::GedBound::AtLeast(lb) => DistBound::AtLeast(lb),
            })
    }

    fn distance_within_tiered(&self, id: u32, tau: f64) -> (DistBound, SolveTier) {
        if self.fault_plan.is_some() {
            // Faulted probes always run the primary computation end to end,
            // so they are full solves by construction.
            return (DistBound::Exact(self.distance(id)), SolveTier::FullSolve);
        }
        self.dist_timer.time(|| {
            let (bound, outcome) = self.dataset.distance_within_outcome(self.q, id, tau);
            let bound = match bound {
                lan_ged::GedBound::Exact(d) => DistBound::Exact(d),
                lan_ged::GedBound::AtLeast(lb) => DistBound::AtLeast(lb),
            };
            let tier = match outcome {
                lan_ged::CascadeOutcome::LbPrune => SolveTier::LbPrune,
                lan_ged::CascadeOutcome::TauAbort => SolveTier::TauAbort,
                lan_ged::CascadeOutcome::FullSolve => SolveTier::FullSolve,
            };
            (bound, tier)
        })
    }
}

impl LanIndex {
    /// Full LAN query: learned initial selection + learned-pruned routing
    /// with CG acceleration.
    pub fn search(&self, q: &Graph, k: usize, b: usize) -> QueryOutcome {
        self.search_with(
            q,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            0,
        )
    }

    /// The HNSW baseline: hierarchy entry + exhaustive beam routing.
    pub fn search_hnsw(&self, q: &Graph, k: usize, b: usize) -> QueryOutcome {
        self.search_with(q, k, b, InitStrategy::HnswIs, RouteStrategy::HnswRoute, 0)
    }

    /// Any combination of strategies (Figs. 5–7, 10). `seed` feeds the
    /// random choices (Rand_IS, the s-sample of LAN_IS).
    pub fn search_with(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> QueryOutcome {
        self.search_with_budget(q, k, b, init, route, seed, &BudgetCtx::unlimited())
    }

    /// [`Self::search_with`] under a query budget. `ctx` carries the NDC /
    /// deadline / hop bounds and the cooperative cancellation flag; shard
    /// fan-out shares one context so one exhausted shard stops its
    /// siblings. With an unlimited context the behavior — results, NDC,
    /// exploration — is bit-identical to [`Self::search_with`]. Budget
    /// exhaustion degrades gracefully: best-so-far results, tagged in
    /// [`QueryOutcome::termination`], never a panic or an error.
    ///
    /// When a fault plan is active (`LAN_FAULTS` or
    /// `lan_pg::faults::set_plan`), distance computations fault
    /// deterministically and recover by retrying once, then falling back
    /// to the approximate GED metric.
    #[allow(clippy::too_many_arguments)]
    pub fn search_with_budget(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
    ) -> QueryOutcome {
        // The disabled path costs exactly one relaxed atomic load.
        if lan_obs::explain::enabled() {
            let (out, ex) = self.search_explain_budgeted(q, k, b, init, route, seed, ctx);
            lan_obs::explain::emit(&ex);
            return out;
        }
        self.search_core(q, k, b, init, route, seed, ctx, None, None)
            .0
    }

    /// [`Self::search_with_budget`] executing through shard-shared serving
    /// resources (cross-query fused scoring, pooled slabs). Bit-identical
    /// results and NDC; only the execution strategy differs.
    #[allow(clippy::too_many_arguments)]
    pub fn search_with_budget_shared(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        shared: &SearchShared,
    ) -> QueryOutcome {
        if lan_obs::explain::enabled() {
            let (out, ex) =
                self.search_explain_budgeted_shared(q, k, b, init, route, seed, ctx, shared);
            lan_obs::explain::emit(&ex);
            return out;
        }
        self.search_core(q, k, b, init, route, seed, ctx, None, Some(shared))
            .0
    }

    /// [`Self::search_with`] that additionally returns the query's EXPLAIN
    /// plan: per-stage wall-clock, NDC decomposed by cascade tier, cache
    /// hit counts, hops, and budget consumption. The plan is collected
    /// unconditionally (no env gate) and nothing is emitted to the global
    /// EXPLAIN ring — callers own the plan.
    ///
    /// Collection never perturbs the search: results, NDC, and exploration
    /// are bit-identical to [`Self::search_with`].
    pub fn search_explain(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
    ) -> (QueryOutcome, QueryExplain) {
        self.search_explain_budgeted(q, k, b, init, route, seed, &BudgetCtx::unlimited())
    }

    /// [`Self::search_explain`] under a query budget ([`BudgetExplain`]
    /// reports the limits and the NDC charged against the shared cap).
    #[allow(clippy::too_many_arguments)]
    pub fn search_explain_budgeted(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
    ) -> (QueryOutcome, QueryExplain) {
        self.search_explain_core(q, k, b, init, route, seed, ctx, None)
    }

    /// [`Self::search_explain_budgeted`] through shard-shared serving
    /// resources — the plan's tier attribution, NDC, and results are
    /// bit-identical to the serial variant.
    #[allow(clippy::too_many_arguments)]
    pub fn search_explain_budgeted_shared(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        shared: &SearchShared,
    ) -> (QueryOutcome, QueryExplain) {
        self.search_explain_core(q, k, b, init, route, seed, ctx, Some(shared))
    }

    #[allow(clippy::too_many_arguments)]
    fn search_explain_core(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        shared: Option<&SearchShared>,
    ) -> (QueryOutcome, QueryExplain) {
        let tiers = TierCounts::default();
        let (out, trace) = self.search_core(q, k, b, init, route, seed, ctx, Some(&tiers), shared);
        let trace = trace.expect("collecting search always produces a stage trace");
        let limits = ctx.limits();
        let ex = QueryExplain {
            query: seed,
            k,
            b,
            init: init.as_str().to_string(),
            route: route.as_str().to_string(),
            termination: out.termination.as_str().to_string(),
            total_ns: out.total_time.as_nanos() as u64,
            init_ns: trace.init_ns,
            route_ns: trace.route_ns,
            dist_ns: out.distance_time.as_nanos() as u64,
            gnn_ns: out.gnn_time.as_nanos() as u64,
            ndc: out.ndc as u64,
            cache_hits: trace.cache_hits,
            hops: trace.hops,
            tiers: tiers.snapshot(),
            budget: BudgetExplain {
                max_ndc: limits.max_ndc.map(|v| v as u64),
                deadline_ms: limits.deadline.map(|d| d.as_millis() as u64),
                max_hops: limits.max_hops.map(|v| v as u64),
                spent_ndc: ctx.spent() as u64,
            },
            timeline: trace.timeline,
            shards: Vec::new(),
        };
        (out, ex)
    }

    /// The one search implementation behind every public entry point.
    /// `tiers` switches EXPLAIN collection on: the distance cache routes
    /// misses through the tier-attributing oracle path and per-stage
    /// timings are kept. `None` is the plain search — zero collection.
    #[allow(clippy::too_many_arguments)]
    fn search_core(
        &self,
        q: &Graph,
        k: usize,
        b: usize,
        init: InitStrategy,
        route: RouteStrategy,
        seed: u64,
        ctx: &BudgetCtx,
        tiers: Option<&TierCounts>,
        shared: Option<&SearchShared>,
    ) -> (QueryOutcome, Option<StageTrace>) {
        let t_start = Instant::now();
        let _q_span = span("query");
        lan_obs::counter(names::QUERY_COUNT).inc();
        // Atomic nanosecond cell instead of RefCell<Duration>: the oracle
        // must be Sync because DistCache is shared across threads in-search.
        // TimerCell is ungated — QueryOutcome::distance_time stays identical
        // whether metrics are enabled or not.
        let dist_timer = TimerCell::new();
        // The fault plan and counters resolve once per query, outside the
        // distance closure; the query seed salts the deterministic draws
        // so different queries fault on different objects.
        let fault_plan = faults::active_plan().map(|p| (p, FaultMetrics::resolve()));
        let qd = DatasetOracle {
            dataset: &self.dataset,
            q,
            seed,
            dist_timer: &dist_timer,
            fault_plan: &fault_plan,
        };
        let cache = match tiers {
            Some(t) => DistCache::new(&qd).with_explain(t),
            None => DistCache::new(&qd),
        };
        let mut stage_trace = tiers.map(|_| StageTrace::default());

        let use_cg = match route {
            RouteStrategy::LanRoute { use_cg } => use_cg,
            // Only relevant when LAN_IS builds a context below.
            RouteStrategy::HnswRoute => true,
        };
        let needs_ctx =
            matches!(route, RouteStrategy::LanRoute { .. }) || init == InitStrategy::LanIs;
        let qctx = needs_ctx.then(|| match shared {
            Some(sh) => self.models.query_context_pooled(q, use_cg, sh.arena),
            None => self.models.query_context(q, use_cg),
        });

        // --- Initial node selection. ---
        let init_t0 = Instant::now();
        let init_span = span("query.init");
        let entries: Vec<u32> = match init {
            InitStrategy::HnswIs => vec![self.pg.hnsw_entry_budgeted(&cache, ctx)],
            InitStrategy::RandIs => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9a7d);
                vec![rng.gen_range(0..self.pg.len()) as u32]
            }
            InitStrategy::LanIs => {
                let qc = qctx.as_ref().expect("LAN_IS requires a query context");
                let nh = self.models.predicted_neighborhood(qc, use_cg);
                if nh.is_empty() {
                    vec![self.pg.hnsw_entry_budgeted(&cache, ctx)]
                } else {
                    // Sample s graphs from N̂_Q, compute their (counted)
                    // distances, keep the best one (paper §V-A). Under an
                    // exhausted budget the best of the sampled prefix (or
                    // no entry at all) is kept — routing degrades rather
                    // than panics.
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a41);
                    let s = self.cfg.model.init_samples.min(nh.len());
                    let mut picked: Vec<u32> = Vec::with_capacity(s);
                    while picked.len() < s {
                        let g = nh[rng.gen_range(0..nh.len())];
                        if !picked.contains(&g) {
                            picked.push(g);
                        }
                    }
                    let mut best: Option<(f64, u32)> = None;
                    for g in picked {
                        let Ok(d) = budgeted_get(&cache, ctx, g) else {
                            break;
                        };
                        let better = match best {
                            None => true,
                            Some((bd, bid)) => d.total_cmp(&bd).then(g.cmp(&bid)).is_lt(),
                        };
                        if better {
                            best = Some((d, g));
                        }
                    }
                    best.map(|(_, g)| vec![g]).unwrap_or_default()
                }
            }
        };

        drop(init_span);
        if let Some(tr) = stage_trace.as_mut() {
            tr.init_ns = init_t0.elapsed().as_nanos() as u64;
            tr.timeline.push(TimelineEvent {
                stage: "init".to_string(),
                ndc: cache.ndc() as u64,
                elapsed_ns: t_start.elapsed().as_nanos() as u64,
            });
        }

        // --- Routing. ---
        let route_t0 = Instant::now();
        let route_span = span("query.route");
        let route_result = match route {
            RouteStrategy::HnswRoute => {
                beam_search_budgeted(self.pg.base(), &cache, &entries, b, k, ctx)
            }
            RouteStrategy::LanRoute { use_cg } => {
                let qc = qctx.as_ref().expect("LAN_Route requires a query context");
                let ranker = match shared {
                    Some(sh) => LearnedRanker::with_shared(&self.models, qc, use_cg, sh.scorer),
                    None => LearnedRanker::new(&self.models, qc, use_cg),
                };
                let prefilter = self.quant_prefilter(qc);
                np_route_prefiltered(
                    self.pg.base(),
                    &cache,
                    &ranker,
                    &entries,
                    b,
                    k,
                    self.cfg.ds,
                    ctx,
                    prefilter.as_ref().map(|p| p as &dyn CandidatePrefilter),
                )
            }
        };
        drop(route_span);
        if let Some(tr) = stage_trace.as_mut() {
            tr.route_ns = route_t0.elapsed().as_nanos() as u64;
            tr.timeline.push(TimelineEvent {
                stage: "route".to_string(),
                ndc: cache.ndc() as u64,
                elapsed_ns: t_start.elapsed().as_nanos() as u64,
            });
            tr.cache_hits = cache.hits() as u64;
            tr.hops = route_result.exploration_order.len() as u64;
        }

        drop(cache);
        // The recorded cause is the primary outcome: it covers init-phase
        // exhaustion (an empty entry list "converges" trivially) and keeps
        // the original reason when routing only saw the cooperative-cancel
        // flag (which reads as a generic `Degraded` locally). The routing
        // tag is the fallback for stops that never recorded a cause.
        let termination = match ctx.cause() {
            Some(t) => t,
            None => route_result.termination,
        };
        if termination.is_degraded() {
            lan_obs::counter(names::QUERY_DEGRADED).inc();
        }
        let distance_time = dist_timer.total();
        // GNN time is owned by the query context (built once per query, so
        // concurrent queries never share an accumulator); strategies that
        // never build one spent no time in the GNN by construction.
        let gnn_time = qctx
            .as_ref()
            .map(|c| c.gnn_time())
            .unwrap_or(Duration::ZERO);
        let outcome = QueryOutcome {
            results: route_result.results,
            ndc: route_result.ndc,
            total_time: t_start.elapsed(),
            distance_time,
            gnn_time,
            termination,
        };
        (outcome, stage_trace)
    }

    /// The per-query routing prefilter under the configured quantized
    /// tier; `None` when the tier is off (or nothing was quantized), in
    /// which case routing is bit-identical to the pre-quant router.
    fn quant_prefilter<'a>(&'a self, qc: &QueryContext) -> Option<QuantPrefilter<'a>> {
        if self.cfg.quant.mode == QuantMode::Off {
            return None;
        }
        let idx = self.models.quant.as_ref()?;
        Some(QuantPrefilter::new(
            idx,
            self.cfg.quant.mode,
            &qc.gin_embed,
            self.cfg.quant.margin,
        ))
    }

    /// Calibrated quantized-surrogate predictions for every database
    /// graph — visit-order keys for the reorderable ground-truth scan.
    /// `None` when the configured mode is `Off` (or nothing quantized).
    pub fn quant_keys(&self, q: &Graph) -> Option<Vec<f64>> {
        if self.cfg.quant.mode == QuantMode::Off {
            return None;
        }
        let idx = self.models.quant.as_ref()?;
        let qq = idx.encode(&self.models.embed(q));
        Some(idx.keys(self.cfg.quant.mode, &qq))
    }

    /// Ground-truth k-NN of `q`, visiting candidates in quantized order
    /// when the tier is enabled. Result-identical to
    /// [`lan_datasets::Dataset::ground_truth_knn`] in every mode (the
    /// reordering only moves `ged.full_evals`, proven and property-tested
    /// in `lan-datasets`).
    pub fn ground_truth(&self, q: &Graph, k: usize) -> Vec<(f64, u32)> {
        let keys = self.quant_keys(q);
        self.dataset.ground_truth_knn_ordered(q, k, keys.as_deref())
    }

    /// Recall@k of a result id list against the brute-force ground truth.
    pub fn recall(&self, q: &Graph, result_ids: &[u32], k: usize) -> f64 {
        let truth = self.ground_truth(q, k);
        let truth_ids: Vec<u32> = truth.iter().map(|&(_, id)| id).collect();
        lan_datasets::recall_at_k(result_ids, &truth_ids, k)
    }
}
