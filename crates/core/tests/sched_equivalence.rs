//! End-to-end determinism contract of the `LAN_SCHED` executors: a query
//! batch over a sharded index must be bit-identical — results, per-query
//! NDC, the global `ged.calls` delta, and EXPLAIN tier attribution —
//! under sequential, static-chunked, and work-stealing execution.
//!
//! The `lan-par` property tests pin the executor primitives; this binary
//! pins the composition: every hot fan-out on the query path (batch,
//! shard fan-out, ground truth) runs through `par_map_dyn`, so a
//! scheduling bug anywhere in the stack shows up here as a digest
//! mismatch.

use lan_core::{InitStrategy, LanConfig, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_par::testenv;
use lan_pg::PgConfig;
use std::sync::OnceLock;

const K: usize = 5;
const B: usize = 10;

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(48)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

fn fixture() -> &'static (Dataset, ShardedLanIndex) {
    static FIXTURE: OnceLock<(Dataset, ShardedLanIndex)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = dataset();
        let idx = ShardedLanIndex::build(&ds, &tiny_cfg(), 3);
        (ds, idx)
    })
}

/// Everything the scheduler must not change about a batch run.
#[derive(Debug, PartialEq)]
struct BatchFingerprint {
    results: Vec<Vec<(u64, u32)>>, // distance bits, id
    ndcs: Vec<usize>,
    ged_calls_delta: u64,
    tiers: Vec<(u64, u64, u64, u64)>,
}

fn run_batch(threads: &str, sched: &str) -> BatchFingerprint {
    testenv::with_env(
        &[("LAN_THREADS", Some(threads)), ("LAN_SCHED", Some(sched))],
        || {
            let (ds, sharded) = fixture();
            let before = lan_obs::snapshot();
            let outs: Vec<lan_core::QueryOutcome> =
                lan_par::par_map_indices_dyn(ds.queries.len(), lan_par::Grain::Fine, |qi| {
                    sharded.search(
                        &ds.queries[qi],
                        K,
                        B,
                        InitStrategy::LanIs,
                        RouteStrategy::LanRoute { use_cg: true },
                        qi as u64,
                    )
                });
            let ged_calls_delta = lan_obs::snapshot()
                .diff(&before)
                .counter(lan_obs::names::GED_CALLS);
            let tiers = (0..ds.queries.len().min(4))
                .map(|qi| {
                    let (_, ex) = sharded.search_explain(
                        &ds.queries[qi],
                        K,
                        B,
                        InitStrategy::LanIs,
                        RouteStrategy::LanRoute { use_cg: true },
                        qi as u64,
                    );
                    (
                        ex.tiers.quant_skips,
                        ex.tiers.lb_prunes,
                        ex.tiers.tau_aborts,
                        ex.tiers.full_solves,
                    )
                })
                .collect();
            BatchFingerprint {
                results: outs
                    .iter()
                    .map(|o| o.results.iter().map(|&(d, id)| (d.to_bits(), id)).collect())
                    .collect(),
                ndcs: outs.iter().map(|o| o.ndc).collect(),
                ged_calls_delta,
                tiers,
            }
        },
    )
}

#[test]
fn batch_is_bit_identical_across_schedulers_and_threads() {
    let reference = run_batch("1", "seq");
    assert!(
        reference.ged_calls_delta > 0,
        "the batch must actually compute distances for the contract to bite"
    );
    for threads in ["1", "2", "7"] {
        for sched in ["seq", "static", "ws"] {
            let got = run_batch(threads, sched);
            assert_eq!(
                got, reference,
                "batch fingerprint diverged (threads={threads}, sched={sched})"
            );
        }
    }
}

#[test]
fn ground_truth_scan_is_scheduler_invariant() {
    let (ds, _) = fixture();
    let reference = testenv::with_env(
        &[("LAN_THREADS", Some("1")), ("LAN_SCHED", Some("seq"))],
        || {
            ds.queries
                .iter()
                .map(|q| ds.ground_truth_knn(q, K))
                .collect::<Vec<_>>()
        },
    );
    for threads in ["2", "7"] {
        for sched in ["static", "ws"] {
            let got = testenv::with_env(
                &[("LAN_THREADS", Some(threads)), ("LAN_SCHED", Some(sched))],
                || {
                    ds.queries
                        .iter()
                        .map(|q| ds.ground_truth_knn(q, K))
                        .collect::<Vec<_>>()
                },
            );
            assert_eq!(
                got, reference,
                "ground truth diverged (threads={threads}, sched={sched})"
            );
        }
    }
}
