//! Persistence contracts of the on-disk index store:
//!
//! * **bit-identity** — a saved-then-opened index answers queries exactly
//!   like the index that built it: same `(distance, id)` results, same
//!   NDC, same `ged.calls` deltas, and the same EXPLAIN tier attribution
//!   (with the reconciliation invariant `lb + tau + full == ndc` holding
//!   on both sides), across both routers, several seeds, and the sharded
//!   fan-out;
//! * **corruption safety** — a truncated file, a flipped byte, and a
//!   future format version come back as typed [`StoreError`]s, never a
//!   panic or silently wrong data.

use lan_core::{InitStrategy, L2RouteIndex, LanConfig, LanIndex, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use lan_store::StoreError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn tiny_dataset(graphs: usize) -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(graphs)
            .with_queries(12)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

/// A fresh path under the system temp dir (no external tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lan_store_test_{}_{tag}_{n}.lan",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const STRATEGIES: [(InitStrategy, RouteStrategy); 3] = [
    (
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
    ),
    (
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: false },
    ),
    (InitStrategy::HnswIs, RouteStrategy::HnswRoute),
];

#[test]
fn flat_index_round_trips_bit_identically() {
    let built = LanIndex::build(tiny_dataset(40), tiny_cfg());
    let path = scratch("flat");
    let _cleanup = TempFile(path.clone());
    let bytes = built.save(&path).expect("save");
    assert!(bytes > 0);
    let loaded = LanIndex::open(&path).expect("open");

    assert_eq!(loaded.build_ndc, built.build_ndc);
    assert_eq!(loaded.dataset.graphs.len(), built.dataset.graphs.len());
    assert_eq!(loaded.report.gamma_star, built.report.gamma_star);

    lan_obs::set_enabled(true);
    for (init, route) in STRATEGIES {
        for qi in 0..6usize {
            let q = built.dataset.queries[qi].clone();
            for seed in [0u64, 7] {
                let s0 = lan_obs::snapshot();
                let a = built.search_with(&q, 3, 4, init, route, seed);
                let built_calls = lan_obs::snapshot()
                    .diff(&s0)
                    .counter(lan_obs::names::GED_CALLS);

                let s1 = lan_obs::snapshot();
                let b = loaded.search_with(&q, 3, 4, init, route, seed);
                let loaded_calls = lan_obs::snapshot()
                    .diff(&s1)
                    .counter(lan_obs::names::GED_CALLS);

                let tag = format!("init={init:?} route={route:?} qi={qi} seed={seed}");
                assert_eq!(a.results, b.results, "results diverged ({tag})");
                assert_eq!(a.ndc, b.ndc, "NDC diverged ({tag})");
                assert_eq!(built_calls, loaded_calls, "ged.calls diverged ({tag})");
            }
        }
    }
}

#[test]
fn flat_index_explain_attribution_survives_reload() {
    let built = LanIndex::build(tiny_dataset(40), tiny_cfg());
    let path = scratch("explain");
    let _cleanup = TempFile(path.clone());
    built.save(&path).expect("save");
    let loaded = LanIndex::open(&path).expect("open");

    for (init, route) in STRATEGIES {
        for qi in 0..4usize {
            let q = built.dataset.queries[qi].clone();
            let (a, ea) = built.search_explain(&q, 3, 4, init, route, 0);
            let (b, eb) = loaded.search_explain(&q, 3, 4, init, route, 0);
            let tag = format!("init={init:?} route={route:?} qi={qi}");
            assert_eq!(a.results, b.results, "results diverged ({tag})");
            // Reconciliation holds on both sides and the per-tier split
            // is identical: the loaded index routes through the same
            // cascade with the same cached signatures.
            assert_eq!(
                ea.tiers.attributed(),
                ea.ndc,
                "built reconciliation ({tag})"
            );
            assert_eq!(
                eb.tiers.attributed(),
                eb.ndc,
                "loaded reconciliation ({tag})"
            );
            assert_eq!(ea.ndc, eb.ndc, "explain NDC diverged ({tag})");
            assert_eq!(
                (
                    ea.tiers.lb_prunes,
                    ea.tiers.tau_aborts,
                    ea.tiers.full_solves
                ),
                (
                    eb.tiers.lb_prunes,
                    eb.tiers.tau_aborts,
                    eb.tiers.full_solves
                ),
                "tier attribution diverged ({tag})"
            );
            assert_eq!(ea.hops, eb.hops, "hops diverged ({tag})");
            assert_eq!(ea.cache_hits, eb.cache_hits, "cache hits diverged ({tag})");
        }
    }
}

#[test]
fn sharded_index_round_trips_bit_identically() {
    let ds = tiny_dataset(60);
    let built = ShardedLanIndex::build(&ds, &tiny_cfg(), 3);
    let path = scratch("sharded");
    let _cleanup = TempFile(path.clone());
    built.save(&path).expect("save");
    let loaded = ShardedLanIndex::open(&path).expect("open");

    assert_eq!(loaded.num_shards(), built.num_shards());
    assert_eq!(loaded.len(), built.len());
    assert_eq!(loaded.global_ids, built.global_ids);

    for (init, route) in STRATEGIES {
        for qi in 0..4usize {
            let q = ds.queries[qi].clone();
            for seed in [0u64, 7] {
                let a = built.search(&q, 3, 4, init, route, seed);
                let b = loaded.search(&q, 3, 4, init, route, seed);
                let tag = format!("init={init:?} route={route:?} qi={qi} seed={seed}");
                assert_eq!(a.results, b.results, "results diverged ({tag})");
                assert_eq!(a.ndc, b.ndc, "NDC diverged ({tag})");
                // The parallel fan-out over loaded shards must agree too.
                let p = loaded.search_par(&q, 3, 4, init, route, seed);
                assert_eq!(a.results, p.results, "parallel fan-out diverged ({tag})");
            }
        }
    }
}

#[test]
fn l2route_round_trips_bit_identically() {
    let built = LanIndex::build(tiny_dataset(40), tiny_cfg());
    let l2 = L2RouteIndex::build(&built, 4);
    let path = scratch("l2");
    let _cleanup = TempFile(path.clone());
    l2.save(&path).expect("save");
    let loaded = L2RouteIndex::open(&path).expect("open");
    assert_eq!(loaded.embeds, l2.embeds);
    for qi in 0..4usize {
        let q = built.dataset.queries[qi].clone();
        let (ra, na, _, _) = l2.search(&built, &q, 3, 4);
        let (rb, nb, _, _) = loaded.search(&built, &q, 3, 4);
        assert_eq!(ra, rb, "results diverged qi={qi}");
        assert_eq!(na, nb, "NDC diverged qi={qi}");
    }
}

/// `expect_err` without a `Debug` bound on the success side (indexes are
/// deliberately not `Debug` — they hold the whole database).
fn open_err(path: &std::path::Path, why: &str) -> StoreError {
    match LanIndex::open(path) {
        Err(e) => e,
        Ok(_) => panic!("open unexpectedly succeeded: {why}"),
    }
}

#[test]
fn corrupted_files_are_typed_errors_never_panics() {
    let built = LanIndex::build(tiny_dataset(30), tiny_cfg());
    let path = scratch("corrupt");
    let _cleanup = TempFile(path.clone());
    built.save(&path).expect("save");
    let good = std::fs::read(&path).expect("read back");

    // Truncation at every granularity: mid-superblock, mid-table,
    // mid-section. All must produce a typed error.
    for frac in [0.1, 0.3, 0.5, 0.9, 0.999] {
        let cut = (good.len() as f64 * frac) as usize;
        let tpath = scratch("trunc");
        let _tc = TempFile(tpath.clone());
        std::fs::write(&tpath, &good[..cut]).unwrap();
        let err = open_err(&tpath, "truncated file must fail");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::BadChecksum { .. }
                    | StoreError::BadMagic
                    | StoreError::Corrupt { .. }
                    | StoreError::MissingSection { .. }
            ),
            "unexpected error for cut at {cut}/{}: {err:?}",
            good.len()
        );
    }

    // A single flipped byte anywhere in a section must trip a checksum
    // (or decode) error — sample positions across the whole file.
    for pos in (0..good.len()).step_by(good.len() / 23 + 1) {
        let mut bad = good.clone();
        bad[pos] ^= 0xA5;
        let bpath = scratch("flip");
        let _bc = TempFile(bpath.clone());
        std::fs::write(&bpath, &bad).unwrap();
        // Any typed error is acceptable; opening must never succeed with
        // silently wrong bytes in a checksummed region, and never panic.
        match LanIndex::open(&bpath) {
            Err(_) => {}
            Ok(_) => panic!("flipped byte at {pos} went undetected"),
        }
    }

    // A future format version is refused up front.
    let mut future = good.clone();
    // Version u32 sits right after the 8-byte magic (little-endian).
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let fpath = scratch("future");
    let _fc = TempFile(fpath.clone());
    std::fs::write(&fpath, &future).unwrap();
    let err = open_err(&fpath, "future version must fail");
    assert!(
        matches!(err, StoreError::BadVersion { .. }),
        "expected BadVersion, got {err:?}"
    );

    // Wrong magic.
    let mut nomagic = good;
    nomagic[0] ^= 0xFF;
    let mpath = scratch("magic");
    let _mc = TempFile(mpath.clone());
    std::fs::write(&mpath, &nomagic).unwrap();
    let err = open_err(&mpath, "bad magic must fail");
    assert!(matches!(err, StoreError::BadMagic), "got {err:?}");

    // Opening a flat file as sharded (and vice versa) is a typed miss.
    let spath = scratch("wrongkind");
    let _sc = TempFile(spath.clone());
    built.save(&spath).expect("save");
    let err = match ShardedLanIndex::open(&spath) {
        Err(e) => e,
        Ok(_) => panic!("opening a flat file as sharded must fail"),
    };
    assert!(
        matches!(err, StoreError::MissingSection { .. }),
        "got {err:?}"
    );
}
