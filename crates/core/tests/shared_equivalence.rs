//! Equivalence contract of the serving execution path: queries executed
//! through shard-shared resources ([`SearchShared`] — the cross-query
//! combining funnel and the pooled pair slabs) must return results,
//! per-query NDC, and EXPLAIN tier attribution **bit-identical** to the
//! serial [`ShardedLanIndex::search_budgeted`] /
//! [`ShardedLanIndex::search_explain_budgeted`] entry points, no matter
//! how many concurrent queries ride the same funnel.
//!
//! This is the in-process half of the serving equivalence guarantee; the
//! over-the-wire half (TCP protocol round-trip included) lives in
//! `lan-serve`.

use lan_core::sharded::merged_explain;
use lan_core::{
    InitStrategy, LanConfig, QueryOutcome, RouteStrategy, SearchShared, ShardedLanIndex,
};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::Graph;
use lan_models::{FusedScoreService, SlabArena};
use lan_obs::explain::{QueryExplain, TimelineEvent};
use lan_pg::budget::{BudgetCtx, QueryBudget};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: lan_pg::PgConfig::new(4),
        model: lan_models::ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..lan_models::ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(48)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

fn fixture() -> &'static ShardedLanIndex {
    static FIXTURE: OnceLock<ShardedLanIndex> = OnceLock::new();
    FIXTURE.get_or_init(|| ShardedLanIndex::build(&dataset(), &tiny_cfg(), 3))
}

/// Per-shard serving resources, as the server holds them: one funnel and
/// one slab arena per shard.
struct ShardResources {
    scorers: Vec<FusedScoreService>,
    arenas: Vec<Arc<SlabArena>>,
}

impl ShardResources {
    fn new(sharded: &ShardedLanIndex) -> Self {
        ShardResources {
            scorers: sharded
                .shards
                .iter()
                .map(|_| FusedScoreService::new())
                .collect(),
            arenas: sharded
                .shards
                .iter()
                .map(|sh| Arc::new(SlabArena::new(&sh.models)))
                .collect(),
        }
    }

    fn shared(&self, s: usize) -> SearchShared<'_> {
        SearchShared {
            scorer: &self.scorers[s],
            arena: &self.arenas[s],
        }
    }
}

/// Runs one query through the shared per-shard path exactly like the
/// serving front-end: per-shard searches (seed derivation internal),
/// shared budget context, merge in shard order.
fn search_shared(
    sharded: &ShardedLanIndex,
    res: &ShardResources,
    q: &Graph,
    k: usize,
    b: usize,
    seed: u64,
) -> QueryOutcome {
    let t0 = Instant::now();
    let ctx = BudgetCtx::new(&QueryBudget::unlimited());
    let per_shard: Vec<QueryOutcome> = (0..sharded.num_shards())
        .map(|s| {
            sharded.shard_search_budgeted_shared(
                s,
                q,
                k,
                b,
                InitStrategy::LanIs,
                RouteStrategy::LanRoute { use_cg: true },
                seed,
                &ctx,
                &res.shared(s),
            )
        })
        .collect();
    sharded.merge_shard_outcomes(per_shard, k, t0, ctx.termination())
}

/// The EXPLAIN variant of [`search_shared`], assembling the merged plan
/// exactly like `search_explain_budgeted`.
fn search_shared_explain(
    sharded: &ShardedLanIndex,
    res: &ShardResources,
    q: &Graph,
    k: usize,
    b: usize,
    seed: u64,
) -> (QueryOutcome, QueryExplain) {
    let t0 = Instant::now();
    let ctx = BudgetCtx::new(&QueryBudget::unlimited());
    let mut per_shard = Vec::new();
    let mut plans = Vec::new();
    let mut timeline = Vec::new();
    let mut ndc_so_far = 0u64;
    for s in 0..sharded.num_shards() {
        let (out, ex) = sharded.shard_search_explain_budgeted_shared(
            s,
            q,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            seed,
            &ctx,
            &res.shared(s),
        );
        ndc_so_far += ex.ndc;
        timeline.push(TimelineEvent {
            stage: format!("shard.{s}"),
            ndc: ndc_so_far,
            elapsed_ns: t0.elapsed().as_nanos() as u64,
        });
        plans.push(ex);
        per_shard.push(out);
    }
    let merged = sharded.merge_shard_outcomes(per_shard, k, t0, ctx.termination());
    let ex = merged_explain(
        &merged,
        k,
        b,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        seed,
        &ctx,
        plans,
        timeline,
    );
    (merged, ex)
}

fn result_bits(out: &QueryOutcome) -> Vec<(u64, u32)> {
    out.results
        .iter()
        .map(|&(d, id)| (d.to_bits(), id))
        .collect()
}

#[test]
fn shared_path_matches_serial_bitwise() {
    let sharded = fixture();
    let ds = dataset();
    let res = ShardResources::new(sharded);
    for seed in 0..6u64 {
        let q = &ds.queries[(seed % 10) as usize];
        let k = 1 + (seed % 5) as usize;
        let b = 4 + (seed % 12) as usize;
        let serial = sharded.search_budgeted(
            q,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            seed,
            &QueryBudget::unlimited(),
        );
        let shared = search_shared(sharded, &res, q, k, b, seed);
        assert_eq!(
            result_bits(&serial),
            result_bits(&shared),
            "seed {seed}: results diverged"
        );
        assert_eq!(serial.ndc, shared.ndc, "seed {seed}: NDC diverged");
        assert_eq!(
            serial.termination.as_str(),
            shared.termination.as_str(),
            "seed {seed}: termination diverged"
        );
    }
    // Contexts were dropped, so the arenas must have recovered their slabs.
    assert!(res.arenas.iter().all(|a| a.pooled() >= 1));
}

#[test]
fn shared_explain_attribution_matches_serial() {
    let sharded = fixture();
    let ds = dataset();
    let res = ShardResources::new(sharded);
    for seed in 0..4u64 {
        let q = &ds.queries[(seed % 10) as usize];
        let (serial_out, serial_ex) = sharded.search_explain_budgeted(
            q,
            5,
            8,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            seed,
            &QueryBudget::unlimited(),
        );
        let (shared_out, shared_ex) = search_shared_explain(sharded, &res, q, 5, 8, seed);
        assert_eq!(result_bits(&serial_out), result_bits(&shared_out));
        assert_eq!(serial_ex.ndc, shared_ex.ndc);
        assert_eq!(serial_ex.cache_hits, shared_ex.cache_hits);
        assert_eq!(serial_ex.hops, shared_ex.hops);
        let (a, b) = (&serial_ex.tiers, &shared_ex.tiers);
        assert_eq!(
            (a.quant_skips, a.lb_prunes, a.tau_aborts, a.full_solves),
            (b.quant_skips, b.lb_prunes, b.tau_aborts, b.full_solves),
            "seed {seed}: tier attribution diverged"
        );
        assert_eq!(serial_ex.shards.len(), shared_ex.shards.len());
        for (sa, sb) in serial_ex.shards.iter().zip(&shared_ex.shards) {
            assert_eq!(sa.ndc, sb.ndc, "per-shard NDC diverged");
            assert_eq!(sa.hops, sb.hops, "per-shard hops diverged");
        }
    }
}

/// K concurrent clients firing interleaved queries through the same
/// per-shard funnels and arenas: every client's results, NDC, and
/// termination must match its own serial run bit for bit — co-batching
/// with other clients' rows must be invisible.
#[test]
fn concurrent_clients_match_serial_bitwise() {
    let sharded = fixture();
    let ds = dataset();
    let res = Arc::new(ShardResources::new(sharded));
    let serial: Vec<(u64, QueryOutcome)> = (0..12u64)
        .map(|seed| {
            let q = &ds.queries[(seed % 10) as usize];
            (
                seed,
                sharded.search_budgeted(
                    q,
                    5,
                    8,
                    InitStrategy::LanIs,
                    RouteStrategy::LanRoute { use_cg: true },
                    seed,
                    &QueryBudget::unlimited(),
                ),
            )
        })
        .collect();
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let res = Arc::clone(&res);
            let ds = dataset();
            std::thread::spawn(move || {
                let sharded = fixture();
                (0..3u64)
                    .map(|i| {
                        let seed = t * 3 + i;
                        let q = &ds.queries[(seed % 10) as usize];
                        (seed, search_shared(sharded, &res, q, 5, 8, seed))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut concurrent: Vec<(u64, QueryOutcome)> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    concurrent.sort_by_key(|&(seed, _)| seed);
    for ((seed_a, a), (seed_b, b)) in serial.iter().zip(&concurrent) {
        assert_eq!(seed_a, seed_b);
        assert_eq!(
            result_bits(a),
            result_bits(b),
            "seed {seed_a}: concurrent shared results diverged from serial"
        );
        assert_eq!(a.ndc, b.ndc, "seed {seed_a}: NDC diverged");
    }
}
