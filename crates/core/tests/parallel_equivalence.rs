//! Determinism contract of the parallel execution layer: every parallel
//! path must return results byte-identical to its sequential counterpart —
//! same `(distance, id)` lists, same total NDC. Only wall-clock may differ.
//!
//! `LAN_THREADS` is forced to 4 so real multi-threaded interleaving is
//! exercised even on single-core CI hosts (`lan-par` reads the variable on
//! every call; all tests in this binary set the same value, so concurrent
//! setters cannot race to different configurations).

use lan_core::{harness, InitStrategy, LanConfig, LanIndex, RouteStrategy, ShardedLanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

fn force_threads() {
    // Serialized via the shared env lock — a raw set_var would race the
    // num_threads() readers of concurrently running tests.
    lan_par::testenv::with_env(&[], || std::env::set_var("LAN_THREADS", "4"));
}

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(48)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

/// Sharded indexes at 2 and 3 shards, built once and shared by every case.
fn sharded_fixtures() -> &'static Vec<ShardedLanIndex> {
    static FIXTURES: OnceLock<Vec<ShardedLanIndex>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        force_threads();
        let ds = dataset();
        [2usize, 3]
            .iter()
            .map(|&s| ShardedLanIndex::build(&ds, &tiny_cfg(), s))
            .collect()
    })
}

fn single_fixture() -> &'static LanIndex {
    static FIXTURE: OnceLock<LanIndex> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        force_threads();
        LanIndex::build(dataset(), tiny_cfg())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel sharded search is byte-identical to sequential across
    /// seeds, shard counts, k, beam widths, and both routing families.
    #[test]
    fn sharded_parallel_matches_sequential(
        seed in 0u64..1_000_000,
        shard_idx in 0usize..2,
        k in 1usize..=8,
        b in 4usize..=16,
        full_lan in any::<bool>(),
    ) {
        force_threads();
        let sharded = &sharded_fixtures()[shard_idx];
        let q = dataset().queries[(seed % 10) as usize].clone();
        let (init, route) = if full_lan {
            (InitStrategy::LanIs, RouteStrategy::LanRoute { use_cg: true })
        } else {
            (InitStrategy::HnswIs, RouteStrategy::HnswRoute)
        };
        let seq = sharded.search(&q, k, b, init, route, seed);
        let par = sharded.search_par(&q, k, b, init, route, seed);
        prop_assert_eq!(&seq.results, &par.results,
            "parallel sharded results diverged");
        prop_assert_eq!(seq.ndc, par.ndc, "parallel sharded NDC diverged");
    }
}

/// The parallel query batch reproduces the sequential batch exactly:
/// same per-point recall and average NDC (each query keeps its seed).
#[test]
fn parallel_batch_matches_run_point() {
    force_threads();
    let index = single_fixture();
    let test_q: Vec<usize> = index.dataset.split.test.clone();
    assert!(!test_q.is_empty());
    let k = 5;
    let truths = harness::ground_truths(index, &test_q, k);
    for b in [4usize, 12] {
        let (seq, seq_bd) = harness::run_point(
            index,
            &test_q,
            &truths,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        let (par, par_bd) = harness::run_point_parallel(
            index,
            &test_q,
            &truths,
            k,
            b,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        );
        assert_eq!(seq.recall, par.recall, "b={b}: recall diverged");
        assert_eq!(seq.avg_ndc, par.avg_ndc, "b={b}: NDC diverged");
        // Component times are per-query sums; identical work on both
        // paths means the distance breakdown stays in the same ballpark
        // (exact equality is impossible for wall-clock measures).
        assert!(par_bd.distance >= std::time::Duration::ZERO);
        assert!(seq_bd.distance >= std::time::Duration::ZERO);
    }
}

/// Index construction itself is thread-count invariant: the same dataset
/// built serially (LAN_THREADS=1 semantics are the serial fallback) and
/// with 4 workers yields identical graphs, embeddings, and search results.
#[test]
fn build_is_thread_count_invariant() {
    // This test intentionally leaves LAN_THREADS at 4 (set by fixtures) and
    // compares against a second in-process build — par_map is
    // order-preserving, so both builds must agree bit-for-bit.
    force_threads();
    let a = LanIndex::build(dataset(), tiny_cfg());
    let b = single_fixture();
    assert_eq!(a.build_ndc, b.build_ndc);
    assert_eq!(a.models.db_embeds, b.models.db_embeds);
    assert_eq!(a.report.gamma_star, b.report.gamma_star);
    let q = dataset().queries[0].clone();
    let oa = a.search(&q, 5, 8);
    let ob = b.search(&q, 5, 8);
    assert_eq!(oa.results, ob.results);
    assert_eq!(oa.ndc, ob.ndc);
}
