//! Observability must be a pure observer: enabling or disabling the
//! metrics registry (and the routing trace) must not change a single query
//! result or NDC. This test lives in its own binary because it flips the
//! global `LAN_METRICS` switch, which would race tests in other binaries'
//! threads.

use lan_core::harness::ground_truths;
use lan_core::{InitStrategy, LanConfig, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;

fn tiny_index() -> LanIndex {
    let ds = Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    );
    let cfg = LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    };
    LanIndex::build(ds, cfg)
}

#[test]
fn metrics_state_never_changes_results_or_ndc() {
    let index = tiny_index();
    let strategies = [
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        ),
        (InitStrategy::HnswIs, RouteStrategy::HnswRoute),
        (
            InitStrategy::RandIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
    ];
    for (init, route) in strategies {
        for qi in 0..4usize {
            let q = index.dataset.queries[qi].clone();
            for seed in [0u64, 7, 1234] {
                lan_obs::set_enabled(true);
                lan_obs::trace::set_route_enabled(true);
                let _t = lan_obs::trace::query(qi as u64);
                let on = index.search_with(&q, 3, 4, init, route, seed);
                drop(_t);

                lan_obs::set_enabled(false);
                lan_obs::trace::set_route_enabled(false);
                let off = index.search_with(&q, 3, 4, init, route, seed);

                assert_eq!(
                    on.results, off.results,
                    "results changed with metrics state (init={init:?}, route={route:?}, qi={qi}, seed={seed})"
                );
                assert_eq!(
                    on.ndc, off.ndc,
                    "NDC changed with metrics state (init={init:?}, route={route:?}, qi={qi}, seed={seed})"
                );
            }
        }
    }
    // Restore defaults for any tests added to this binary later.
    lan_obs::set_enabled(true);
    lan_obs::trace::set_route_enabled(false);
    lan_obs::trace::drain();
}

#[test]
fn harness_aggregation_identical_sequential_vs_parallel() {
    // The shared Aggregate helper must make the sequential and parallel
    // harness paths count recall and NDC identically.
    let index = tiny_index();
    let query_idx: Vec<usize> = (0..6).collect();
    let truths = ground_truths(&index, &query_idx, 3);
    let (p_seq, b_seq) = lan_core::harness::run_point(
        &index,
        &query_idx,
        &truths,
        3,
        4,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
    );
    let (p_par, b_par) = lan_core::harness::run_point_parallel(
        &index,
        &query_idx,
        &truths,
        3,
        4,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
    );
    assert_eq!(p_seq.recall, p_par.recall);
    assert_eq!(p_seq.avg_ndc, p_par.avg_ndc);
    // Component times are per-query sums, so both paths report comparable
    // breakdowns (values differ by scheduling; structure must match).
    assert!(b_seq.total > std::time::Duration::ZERO);
    assert!(b_par.total > std::time::Duration::ZERO);
}
