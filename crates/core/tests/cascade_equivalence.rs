//! End-to-end cascade equivalence: a full `search_with` query (whose
//! oracle runs the threshold-gated GED kernel cascade) must be
//! bit-identical — results, NDC, termination — to driving the same router
//! by hand over a plain exact-distance closure, which cannot produce
//! bounds and therefore follows the seed code path.

use lan_core::{InitStrategy, LanConfig, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::{LearnedRanker, ModelConfig};
use lan_pg::np_route::np_route;
use lan_pg::{beam_search, DistCache, PgConfig};

fn tiny_index() -> LanIndex {
    let ds = Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    );
    let cfg = LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    };
    LanIndex::build(ds, cfg)
}

#[test]
fn search_matches_plain_oracle_routing() {
    let index = tiny_index();
    let (k, b) = (3usize, 4usize);
    for qi in 0..6usize {
        let q = index.dataset.queries[qi].clone();
        let f = |id: u32| index.dataset.distance(&q, id);

        // HNSW baseline: hierarchy entry + Algorithm 1.
        let out = index.search_with(&q, k, b, InitStrategy::HnswIs, RouteStrategy::HnswRoute, 0);
        let cache = DistCache::new(&f);
        let entry = index.pg.hnsw_entry(&cache);
        let rr = beam_search(index.pg.base(), &cache, &[entry], b, k);
        assert_eq!(out.results, rr.results, "hnsw results, q={qi}");
        assert_eq!(out.ndc, rr.ndc, "hnsw ndc, q={qi}");
        assert_eq!(out.termination, rr.termination, "hnsw termination, q={qi}");

        // LAN routing (Algorithms 2-4), with and without CG acceleration.
        for use_cg in [true, false] {
            let out = index.search_with(
                &q,
                k,
                b,
                InitStrategy::HnswIs,
                RouteStrategy::LanRoute { use_cg },
                0,
            );
            let cache = DistCache::new(&f);
            let entry = index.pg.hnsw_entry(&cache);
            let qc = index.models.query_context(&q, use_cg);
            let ranker = LearnedRanker::new(&index.models, &qc, use_cg);
            let rr = np_route(
                index.pg.base(),
                &cache,
                &ranker,
                &[entry],
                b,
                k,
                index.cfg.ds,
            );
            assert_eq!(out.results, rr.results, "lan results, q={qi} cg={use_cg}");
            assert_eq!(out.ndc, rr.ndc, "lan ndc, q={qi} cg={use_cg}");
            assert_eq!(
                out.termination, rr.termination,
                "lan termination, q={qi} cg={use_cg}"
            );
        }
    }
}
