//! Budget contract of query execution (the robustness layer's core
//! properties):
//!
//! * an **unlimited** budget is a true no-op — results and NDC are
//!   bit-identical to the unbudgeted search;
//! * a finite cap **equal** to the unbudgeted NDC never blocks (the
//!   reservation protocol charges exactly the cache misses), so it is
//!   also bit-identical and still reports `Converged`;
//! * any finite cap is **strict**: measured NDC never exceeds it, even
//!   summed across shards sharing one budget — and the query degrades
//!   gracefully (tagged termination, best-so-far results, no panic);
//! * `termination != Converged` **iff** the budget actually bound.

use lan_core::{
    BudgetCtx, InitStrategy, LanConfig, LanIndex, QueryBudget, RouteStrategy, ShardedLanIndex,
    Termination,
};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn force_threads() {
    // Serialized via the shared env lock — a raw set_var would race the
    // num_threads() readers of concurrently running tests.
    lan_par::testenv::with_env(&[], || std::env::set_var("LAN_THREADS", "4"));
}

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(48)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

fn single_fixture() -> &'static LanIndex {
    static FIXTURE: OnceLock<LanIndex> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        force_threads();
        LanIndex::build(dataset(), tiny_cfg())
    })
}

fn sharded_fixture() -> &'static ShardedLanIndex {
    static FIXTURE: OnceLock<ShardedLanIndex> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        force_threads();
        ShardedLanIndex::build(&dataset(), &tiny_cfg(), 2)
    })
}

fn strategies(full_lan: bool) -> (InitStrategy, RouteStrategy) {
    if full_lan {
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        )
    } else {
        (InitStrategy::HnswIs, RouteStrategy::HnswRoute)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Unlimited and exactly-sufficient budgets reproduce the unbudgeted
    /// search bit-for-bit; any tighter cap binds strictly and tags the
    /// outcome. Together: `termination != Converged` iff the cap bound.
    #[test]
    fn ndc_cap_is_strict_and_exact(
        seed in 0u64..1_000_000,
        k in 1usize..=8,
        b in 4usize..=16,
        full_lan in any::<bool>(),
    ) {
        let index = single_fixture();
        let q = dataset().queries[(seed % 10) as usize].clone();
        let (init, route) = strategies(full_lan);
        let base = index.search_with(&q, k, b, init, route, seed);
        prop_assert_eq!(base.termination, Termination::Converged);

        // Unlimited context: bit-identical (the fast path is literally
        // the unbudgeted code).
        let unlimited = BudgetCtx::unlimited();
        let same = index.search_with_budget(&q, k, b, init, route, seed, &unlimited);
        prop_assert_eq!(&base.results, &same.results);
        prop_assert_eq!(base.ndc, same.ndc);
        prop_assert_eq!(same.termination, Termination::Converged);

        // A cap equal to the unbudgeted NDC never blocks: every charge is
        // a real cache miss, so the peek-then-charge path must also be
        // bit-identical — this exercises the finite-budget accounting.
        let exact = BudgetCtx::new(&QueryBudget::unlimited().with_max_ndc(base.ndc));
        let tight = index.search_with_budget(&q, k, b, init, route, seed, &exact);
        prop_assert_eq!(&base.results, &tight.results, "exact cap changed results");
        prop_assert_eq!(base.ndc, tight.ndc, "exact cap changed NDC");
        prop_assert_eq!(tight.termination, Termination::Converged);

        // Any smaller cap must bind: NDC never exceeds it and the outcome
        // is tagged degraded. No panic, results stay sorted.
        for cap in [1usize, base.ndc / 2, base.ndc.saturating_sub(1)] {
            if cap == 0 || cap >= base.ndc {
                continue;
            }
            let ctx = BudgetCtx::new(&QueryBudget::unlimited().with_max_ndc(cap));
            let out = index.search_with_budget(&q, k, b, init, route, seed, &ctx);
            prop_assert!(out.ndc <= cap, "cap {} exceeded: ndc {}", cap, out.ndc);
            prop_assert!(out.termination.is_degraded(),
                "cap {} < unbudgeted NDC {} must degrade", cap, base.ndc);
            prop_assert!(out.results.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    /// The sharded paths obey the same contract, with one budget shared
    /// across every shard: the cap bounds the *summed* NDC, and unlimited
    /// budgets stay identical to the unbudgeted sequential/parallel paths.
    #[test]
    fn sharded_budget_is_shared_and_strict(
        seed in 0u64..1_000_000,
        k in 1usize..=6,
        b in 4usize..=12,
        full_lan in any::<bool>(),
    ) {
        force_threads();
        let sharded = sharded_fixture();
        let q = dataset().queries[(seed % 10) as usize].clone();
        let (init, route) = strategies(full_lan);
        let base = sharded.search(&q, k, b, init, route, seed);
        prop_assert_eq!(base.termination, Termination::Converged);

        let unl = sharded.search_budgeted(&q, k, b, init, route, seed,
            &QueryBudget::unlimited());
        prop_assert_eq!(&base.results, &unl.results);
        prop_assert_eq!(base.ndc, unl.ndc);

        let par = sharded.search_par_budgeted(&q, k, b, init, route, seed,
            &QueryBudget::unlimited());
        prop_assert_eq!(&base.results, &par.results);
        prop_assert_eq!(base.ndc, par.ndc);

        // A shared finite cap bounds the summed NDC on both shard paths.
        for cap in [1usize, base.ndc / 3, base.ndc / 2] {
            if cap == 0 {
                continue;
            }
            let budget = QueryBudget::unlimited().with_max_ndc(cap);
            let seq = sharded.search_budgeted(&q, k, b, init, route, seed, &budget);
            prop_assert!(seq.ndc <= cap, "sequential shards: {} > cap {}", seq.ndc, cap);
            let par = sharded.search_par_budgeted(&q, k, b, init, route, seed, &budget);
            prop_assert!(par.ndc <= cap, "parallel shards: {} > cap {}", par.ndc, cap);
            if cap < base.ndc {
                prop_assert!(seq.termination.is_degraded());
                prop_assert!(par.termination.is_degraded());
            }
        }
    }
}

/// An already-expired deadline stops the query before any distance work —
/// gracefully: empty or partial results, `Deadline` tag, no panic.
#[test]
fn expired_deadline_degrades_gracefully() {
    let index = single_fixture();
    let q = dataset().queries[0].clone();
    let ctx = BudgetCtx::new(&QueryBudget::unlimited().with_deadline(Duration::ZERO));
    let out = index.search_with_budget(
        &q,
        5,
        8,
        InitStrategy::HnswIs,
        RouteStrategy::HnswRoute,
        0,
        &ctx,
    );
    assert_eq!(out.termination, Termination::Deadline);
    assert_eq!(out.ndc, 0, "no distance may be charged after the deadline");
}

/// The hop cap bounds exploration without cancelling anything: the query
/// ends degraded with at most `max_hops` explored nodes' worth of work.
#[test]
fn hop_cap_bounds_exploration() {
    let index = single_fixture();
    let q = dataset().queries[1].clone();
    let base = index.search_with(&q, 5, 16, InitStrategy::HnswIs, RouteStrategy::HnswRoute, 0);
    let ctx = BudgetCtx::new(&QueryBudget::unlimited().with_max_hops(1));
    let out = index.search_with_budget(
        &q,
        5,
        16,
        InitStrategy::HnswIs,
        RouteStrategy::HnswRoute,
        0,
        &ctx,
    );
    assert!(out.termination.is_degraded());
    assert!(!ctx.cancelled(), "a hop cap must not cancel sibling shards");
    assert!(
        out.ndc <= base.ndc,
        "hop-capped NDC {} exceeds uncapped {}",
        out.ndc,
        base.ndc
    );
}

/// The harness reads `LAN_NDC_BUDGET` / `LAN_DEADLINE_MS` per batch; a
/// capped environment degrades queries instead of failing the batch, and
/// unsetting the variables restores exact unbudgeted behavior.
#[test]
fn harness_env_budget_roundtrip() {
    use lan_core::harness;
    let index = single_fixture();
    let test_q: Vec<usize> = index.dataset.split.test.clone();
    let truths = harness::ground_truths(index, &test_q, 5);
    let (init, route) = strategies(false);

    let (base, _) = harness::run_point(index, &test_q, &truths, 5, 8, init, route);
    let (capped, _) = lan_par::testenv::with_env(&[("LAN_NDC_BUDGET", Some("2"))], || {
        harness::run_point(index, &test_q, &truths, 5, 8, init, route)
    });
    assert!(
        capped.avg_ndc <= 2.0,
        "per-query cap leaked: {}",
        capped.avg_ndc
    );
    let (restored, _) = lan_par::testenv::with_env(&[("LAN_NDC_BUDGET", None)], || {
        harness::run_point(index, &test_q, &truths, 5, 8, init, route)
    });
    assert_eq!(base.recall, restored.recall);
    assert_eq!(base.avg_ndc, restored.avg_ndc);
}
