//! End-to-end contracts of the quantized prefilter tier:
//!
//! * the quantized-ordered ground-truth scan is result-identical to the
//!   plain lb-ordered scan (same neighbors, distances, tie-breaks — hence
//!   the same final threshold);
//! * a routing prefilter with an effectively-infinite margin never fires
//!   and is bit-identical to the tier being off;
//! * with a tight margin the tier actually engages (surrogate evaluations
//!   observed) and still returns k results.

use lan_core::{InitStrategy, LanConfig, LanIndex, QuantConfig, QuantMode, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;

fn tiny_index(quant: QuantConfig) -> LanIndex {
    let ds = Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    );
    let cfg = LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant,
    };
    LanIndex::build(ds, cfg)
}

#[test]
fn quant_ordered_ground_truth_identical_to_plain() {
    for mode in [QuantMode::Binary, QuantMode::Scalar] {
        let index = tiny_index(QuantConfig { mode, margin: 1.5 });
        assert!(index.models.quant.is_some(), "quant store must build");
        for qi in 0..5usize {
            let q = index.dataset.queries[qi].clone();
            for k in [1usize, 4, 9] {
                let plain = index.dataset.ground_truth_knn(&q, k);
                let quant = index.ground_truth(&q, k);
                assert_eq!(quant, plain, "mode={mode:?} q={qi} k={k}");
            }
        }
    }
}

#[test]
fn huge_margin_prefilter_is_bit_identical_to_off() {
    // A margin so large the skip test can never pass: the prefilter is
    // consulted but never fires, so routing must match the off-tier run
    // bit for bit (results, NDC) — the end-to-end analogue of lan-pg's
    // NeverSkip property test.
    let off = tiny_index(QuantConfig {
        mode: QuantMode::Off,
        margin: 1.5,
    });
    let huge = tiny_index(QuantConfig {
        mode: QuantMode::Scalar,
        margin: 1e9,
    });
    let (k, b) = (3usize, 4usize);
    for qi in 0..6usize {
        let q = off.dataset.queries[qi].clone();
        let a = off.search_with(
            &q,
            k,
            b,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
            0,
        );
        let z = huge.search_with(
            &q,
            k,
            b,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
            0,
        );
        assert_eq!(a.results, z.results, "q={qi}");
        assert_eq!(a.ndc, z.ndc, "q={qi}");
    }
}

#[test]
fn tight_margin_engages_the_tier() {
    let index = tiny_index(QuantConfig {
        mode: QuantMode::Scalar,
        margin: 1.0,
    });
    let (k, b) = (3usize, 4usize);
    let before = lan_obs::snapshot();
    for qi in 0..6usize {
        let q = index.dataset.queries[qi].clone();
        let out = index.search_with(
            &q,
            k,
            b,
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
            0,
        );
        assert_eq!(out.results.len(), k, "q={qi}");
    }
    let delta = lan_obs::snapshot().diff(&before);
    assert!(
        delta.counter(lan_obs::names::QUANT_PREFILTER_EVALS) > 0,
        "prefilter never consulted — tier not wired into routing"
    );
}
