//! EXPLAIN-plan reconciliation properties: the per-tier NDC attribution
//! must sum *exactly* to the query's NDC — which equals the `ged.calls`
//! registry delta — under every termination cause and under both shard
//! fan-outs, and collecting a plan must never perturb the search.
//!
//! The tests read global-registry deltas and flip the EXPLAIN switch, so
//! every test serializes on one lock (they share this binary's process
//! with nothing else).

use lan_core::{
    InitStrategy, LanConfig, LanIndex, QueryBudget, QueryOutcome, RouteStrategy, ShardedLanIndex,
};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_obs::explain::QueryExplain;
use lan_pg::PgConfig;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests: they diff the global `ged.calls` counter and toggle
/// the global EXPLAIN switch.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn tiny_dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(40)
            .with_queries(10)
            .with_metric(lan_ged::GedMethod::Hungarian),
    )
}

fn index() -> &'static LanIndex {
    static INDEX: OnceLock<LanIndex> = OnceLock::new();
    INDEX.get_or_init(|| LanIndex::build(tiny_dataset(), tiny_cfg()))
}

fn sharded() -> &'static ShardedLanIndex {
    static SHARDED: OnceLock<ShardedLanIndex> = OnceLock::new();
    SHARDED.get_or_init(|| ShardedLanIndex::build(&tiny_dataset(), &tiny_cfg(), 2))
}

/// The reconciliation contract on one (outcome, plan) pair, against the
/// `ged.calls` delta observed around the search.
fn assert_reconciles(out: &QueryOutcome, ex: &QueryExplain, ged_delta: u64, what: &str) {
    assert_eq!(
        ex.tiers.attributed(),
        ex.ndc,
        "{what}: tier attribution must sum to the plan's NDC"
    );
    assert_eq!(ex.ndc, out.ndc as u64, "{what}: plan NDC != outcome NDC");
    assert_eq!(ex.ndc, ged_delta, "{what}: plan NDC != ged.calls delta");
    assert_eq!(
        ex.lookups(),
        ex.ndc + ex.cache_hits,
        "{what}: lookups != ndc + cache_hits"
    );
    assert_eq!(
        ex.termination,
        out.termination.as_str(),
        "{what}: termination string drifted"
    );
}

fn ged_calls() -> u64 {
    lan_obs::counter(lan_obs::names::GED_CALLS).get()
}

#[test]
fn tiers_reconcile_under_every_termination_cause() {
    let _l = lock();
    lan_obs::set_enabled(true);
    let index = index();
    let budgets: Vec<(&str, QueryBudget)> = vec![
        ("unlimited", QueryBudget::unlimited()),
        ("ndc_0", QueryBudget::unlimited().with_max_ndc(0)),
        ("ndc_3", QueryBudget::unlimited().with_max_ndc(3)),
        ("ndc_10", QueryBudget::unlimited().with_max_ndc(10)),
        (
            "deadline_0",
            QueryBudget::unlimited().with_deadline(Duration::ZERO),
        ),
        ("hops_1", QueryBudget::unlimited().with_max_hops(1)),
    ];
    let mut causes = std::collections::BTreeSet::new();
    for (init, route) in [
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (InitStrategy::HnswIs, RouteStrategy::HnswRoute),
    ] {
        for qi in 0..3usize {
            let q = index.dataset.queries[qi].clone();
            for (label, budget) in &budgets {
                let ctx = lan_core::BudgetCtx::new(budget);
                let before = ged_calls();
                let (out, ex) =
                    index.search_explain_budgeted(&q, 5, 10, init, route, qi as u64, &ctx);
                let delta = ged_calls() - before;
                causes.insert(ex.termination.clone());
                assert_reconciles(&out, &ex, delta, &format!("{label}/{}", route.as_str()));
                // The budget block must report the limits verbatim.
                assert_eq!(
                    ex.budget.max_ndc,
                    budget.max_ndc.map(|v| v as u64),
                    "{label}"
                );
                assert_eq!(
                    ex.budget.max_hops,
                    budget.max_hops.map(|v| v as u64),
                    "{label}"
                );
            }
        }
    }
    // The sweep must actually have exercised distinct termination causes,
    // not converged everywhere.
    assert!(causes.contains("converged"), "causes seen: {causes:?}");
    assert!(causes.contains("ndc_budget"), "causes seen: {causes:?}");
    assert!(causes.contains("deadline"), "causes seen: {causes:?}");
    assert!(causes.len() >= 3, "causes seen: {causes:?}");
}

#[test]
fn sharded_fanout_reconciles_sequential_and_parallel() {
    let _l = lock();
    lan_obs::set_enabled(true);
    let sharded = sharded();
    let q = sharded.shards[0].dataset.queries[0].clone();
    let init = InitStrategy::LanIs;
    let route = RouteStrategy::LanRoute { use_cg: true };

    for (label, budget) in [
        ("unlimited", QueryBudget::unlimited()),
        ("ndc_8", QueryBudget::unlimited().with_max_ndc(8)),
    ] {
        let before = ged_calls();
        let (out, ex) = sharded.search_explain_budgeted(&q, 5, 10, init, route, 1, &budget);
        let delta = ged_calls() - before;
        assert_reconciles(&out, &ex, delta, &format!("sharded-seq/{label}"));
        assert!(!ex.shards.is_empty(), "merged plan lost its sub-plans");
        // The merged counters are exactly the sums of the sub-plans.
        let sub_ndc: u64 = ex.shards.iter().map(|s| s.ndc).sum();
        let sub_tiers: u64 = ex.shards.iter().map(|s| s.tiers.attributed()).sum();
        assert_eq!(ex.ndc, sub_ndc, "{label}: merged NDC != sum of shard NDC");
        assert_eq!(ex.tiers.attributed(), sub_tiers, "{label}");
        assert_eq!(
            ex.timeline.len(),
            ex.shards.len(),
            "{label}: one timeline entry per searched shard"
        );

        let before = ged_calls();
        let (pout, pex) = sharded.search_par_explain_budgeted(&q, 5, 10, init, route, 1, &budget);
        let pdelta = ged_calls() - before;
        assert_reconciles(&pout, &pex, pdelta, &format!("sharded-par/{label}"));
        if budget.is_unlimited() {
            // The parallel fan-out is bit-identical to sequential when no
            // budget races the shards.
            assert_eq!(out.results, pout.results, "{label}");
            assert_eq!(ex.ndc, pex.ndc, "{label}");
            assert_eq!(ex.tiers, pex.tiers, "{label}");
        }
    }
}

#[test]
fn collecting_a_plan_never_perturbs_the_search() {
    let _l = lock();
    lan_obs::set_enabled(true);
    let index = index();
    for (init, route) in [
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        ),
        (InitStrategy::HnswIs, RouteStrategy::HnswRoute),
        (
            InitStrategy::RandIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
    ] {
        for qi in 0..4usize {
            let q = index.dataset.queries[qi].clone();
            let plain = index.search_with(&q, 5, 10, init, route, qi as u64);
            let (explained, ex) = index.search_explain(&q, 5, 10, init, route, qi as u64);
            assert_eq!(plain.results, explained.results, "{}", route.as_str());
            assert_eq!(plain.ndc, explained.ndc, "{}", route.as_str());
            assert_eq!(ex.init, init.as_str());
            assert_eq!(ex.route, route.as_str());
            assert_eq!(ex.query, qi as u64);
        }
    }
}

#[test]
fn env_gated_emission_lands_in_the_ring() {
    let _l = lock();
    lan_obs::set_enabled(true);
    let index = index();
    let q = index.dataset.queries[0].clone();

    lan_obs::explain::set_enabled(false);
    lan_obs::explain::drain();
    let _ = index.search(&q, 5, 10);
    assert!(
        lan_obs::explain::drain().is_empty(),
        "disabled EXPLAIN must emit nothing"
    );

    lan_obs::explain::set_enabled(true);
    let plain = index.search(&q, 5, 10);
    let lines = lan_obs::explain::drain();
    lan_obs::explain::set_enabled(false);
    assert_eq!(lines.len(), 1, "one emitted plan per top-level search");
    let line = &lines[0];
    assert!(line.starts_with('{') && line.ends_with('}'), "JSONL shape");
    assert!(
        line.contains(&format!("\"ndc\":{}", plain.ndc)),
        "emitted plan must carry the query's NDC: {line}"
    );

    // Sharded top-level searches emit exactly one (merged) plan too —
    // per-shard sub-searches must not double-emit.
    let sharded = sharded();
    lan_obs::explain::set_enabled(true);
    let _ = sharded.search(
        &q,
        5,
        10,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        0,
    );
    let _ = sharded.search_par(
        &q,
        5,
        10,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        0,
    );
    let lines = lan_obs::explain::drain();
    lan_obs::explain::set_enabled(false);
    assert_eq!(lines.len(), 2, "one merged plan per sharded search");
    assert!(
        lines.iter().all(|l| l.contains("\"stage\":\"shard.0\"")),
        "merged plans must carry per-shard timeline entries"
    );
}
