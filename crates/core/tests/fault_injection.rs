//! End-to-end fault-injection contract: with a fault plan active, every
//! query still completes (no panic, no error), the injected faults are
//! deterministic (two identical runs return identical results), and the
//! recovery policy is visible in the `fault.*` counters.
//!
//! This lives in its own test binary: the fault plan is process-global, so
//! activating it here must not interleave with the budget-equivalence
//! assertions of `budget_properties.rs` (separate binary = separate
//! process). Within this binary, every test serializes on the shared env
//! lock.

use lan_core::{InitStrategy, LanConfig, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_obs::names;
use lan_pg::faults::{set_plan, FaultPlan};
use lan_pg::PgConfig;
use std::sync::OnceLock;

fn tiny_cfg() -> LanConfig {
    LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 1,
            max_samples_per_epoch: 80,
            nh_cover_k: 6,
            clusters: 3,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    }
}

fn fixture() -> &'static LanIndex {
    static FIXTURE: OnceLock<LanIndex> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(
            DatasetSpec::syn()
                .with_graphs(48)
                .with_queries(10)
                .with_metric(lan_ged::GedMethod::Hungarian),
        );
        LanIndex::build(ds, tiny_cfg())
    })
}

/// Runs every test query at the given plan and returns the result lists.
fn run_all(index: &LanIndex, plan: Option<FaultPlan>) -> Vec<Vec<(f64, u32)>> {
    set_plan(plan);
    let out = index
        .dataset
        .split
        .test
        .iter()
        .map(|&qi| {
            let q = &index.dataset.queries[qi];
            let out = index.search_with(
                q,
                5,
                8,
                InitStrategy::LanIs,
                RouteStrategy::LanRoute { use_cg: true },
                qi as u64,
            );
            assert!(
                out.results.iter().all(|&(d, _)| d.is_finite() && d >= 0.0),
                "faulted query {qi} produced a non-finite distance"
            );
            out.results
        })
        .collect();
    set_plan(None);
    out
}

#[test]
fn faulted_queries_complete_and_are_deterministic() {
    let _l = lan_par::testenv::lock();
    let index = fixture();

    let clean = run_all(index, None);
    // 5% timeouts + 1% failures: every query completes; two identical
    // runs inject identical faults and return identical results.
    let plan = FaultPlan::parse("ged_timeout:0.05,ged_fail:0.01,seed=42").unwrap();
    let once = run_all(index, Some(plan));
    let twice = run_all(index, Some(plan));
    assert_eq!(once, twice, "fault injection is not deterministic");
    assert_eq!(clean.len(), once.len());

    // A zero-rate plan is indistinguishable from no plan.
    let zero = run_all(index, Some(FaultPlan::none()));
    assert_eq!(clean, zero);
}

#[test]
fn fault_counters_track_the_recovery_policy() {
    let _l = lan_par::testenv::lock();
    let index = fixture();
    lan_obs::set_enabled(true);

    let before = lan_obs::snapshot();
    // Rate 0.5: plenty of faults; some retries also fault → fallbacks.
    let _ = run_all(
        index,
        Some(FaultPlan::parse("ged_timeout:0.5,seed=7").unwrap()),
    );
    let delta = lan_obs::snapshot().diff(&before);

    let injected = delta.counter(names::FAULT_INJECTED);
    let retried = delta.counter(names::FAULT_RETRIED);
    let fallback = delta.counter(names::FAULT_FALLBACK);
    assert!(injected > 0, "no faults injected at rate 0.5");
    assert!(retried > 0, "faults must be retried first");
    assert_eq!(
        injected,
        retried + fallback,
        "every injected fault is either the first attempt (retried) or the second (fallback)"
    );
}
