//! System-level tests: build a small LAN index and exercise every query
//! strategy the paper measures.

use lan_core::{harness, InitStrategy, L2RouteIndex, LanConfig, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_ged::GedMethod;
use lan_models::ModelConfig;
use lan_pg::PgConfig;

fn small_index() -> LanIndex {
    let ds = Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(80)
            .with_queries(20)
            .with_metric(GedMethod::Hungarian),
    );
    let cfg = LanConfig {
        pg: PgConfig::new(4),
        model: ModelConfig {
            embed_dim: 8,
            epochs: 2,
            max_samples_per_epoch: 200,
            nh_cover_k: 12,
            clusters: 4,
            top_clusters: 2,
            mlp_hidden: 8,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::default(),
    };
    LanIndex::build(ds, cfg)
}

#[test]
fn all_strategy_combinations_work() {
    let idx = small_index();
    let q = idx.dataset.queries[idx.dataset.split.test[0]].clone();
    let combos = [
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        ),
        (
            InitStrategy::HnswIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (
            InitStrategy::RandIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (InitStrategy::HnswIs, RouteStrategy::HnswRoute),
        (InitStrategy::LanIs, RouteStrategy::HnswRoute),
        (InitStrategy::RandIs, RouteStrategy::HnswRoute),
    ];
    for (init, route) in combos {
        let out = idx.search_with(&q, 5, 10, init, route, 7);
        assert_eq!(out.results.len(), 5, "{init:?}/{route:?}");
        assert!(out.results.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(out.ndc > 0);
        assert!(out.total_time >= out.distance_time);
    }
}

#[test]
fn cg_and_plain_routing_agree() {
    // Theorem 2 at the system level: the CG-accelerated query must return
    // exactly the same results as the plain-GNN query (identical rankings).
    let idx = small_index();
    for &qi in idx.dataset.split.test.iter().take(3) {
        let q = idx.dataset.queries[qi].clone();
        let a = idx.search_with(
            &q,
            5,
            10,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
            3,
        );
        let b = idx.search_with(
            &q,
            5,
            10,
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
            3,
        );
        assert_eq!(a.results, b.results, "CG changed the search results");
        assert_eq!(a.ndc, b.ndc, "CG changed the NDC");
    }
}

#[test]
fn lan_achieves_reasonable_recall() {
    let idx = small_index();
    let test_q: Vec<usize> = idx.dataset.split.test.clone();
    let truths = harness::ground_truths(&idx, &test_q, 5);
    let (point, _) = harness::run_point(
        &idx,
        &test_q,
        &truths,
        5,
        16,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
    );
    assert!(point.recall >= 0.5, "LAN recall too low: {}", point.recall);
    assert!(
        point.avg_ndc < idx.dataset.graphs.len() as f64,
        "NDC worse than a scan"
    );
}

#[test]
fn lan_route_saves_ndc_vs_baseline() {
    let idx = small_index();
    let test_q: Vec<usize> = idx.dataset.split.test.clone();
    let truths = harness::ground_truths(&idx, &test_q, 5);
    let (lan, _) = harness::run_point(
        &idx,
        &test_q,
        &truths,
        5,
        10,
        InitStrategy::HnswIs,
        RouteStrategy::LanRoute { use_cg: true },
    );
    let (hnsw, _) = harness::run_point(
        &idx,
        &test_q,
        &truths,
        5,
        10,
        InitStrategy::HnswIs,
        RouteStrategy::HnswRoute,
    );
    // The NDC <= baseline guarantee (Theorem 1) holds for the *oracle*
    // ranker (tested in lan-pg); a barely-trained learned ranker on this
    // toy setup may pay a small gamma-escalation overhead, so allow slack.
    assert!(
        lan.avg_ndc <= hnsw.avg_ndc * 1.25,
        "learned pruning used far more NDC ({} vs {})",
        lan.avg_ndc,
        hnsw.avg_ndc
    );
    // Quality must stay in the same ballpark.
    assert!(
        lan.recall >= hnsw.recall - 0.25,
        "{} vs {}",
        lan.recall,
        hnsw.recall
    );
}

#[test]
fn l2route_baseline_works_and_recall_grows_with_candidates() {
    let idx = small_index();
    let l2 = L2RouteIndex::build(&idx, 4);
    let test_q: Vec<usize> = idx.dataset.split.test.clone();
    let truths = harness::ground_truths(&idx, &test_q, 5);
    let curve = harness::l2route_curve(&idx, &l2, &test_q, &truths, 5, &[5, 20, 60]);
    assert_eq!(curve.len(), 3);
    // More verified candidates can only help recall.
    assert!(curve[2].recall >= curve[0].recall - 1e-9);
    // NDC equals the candidate budget (full verification).
    assert!(curve[1].avg_ndc >= 19.0);
}

#[test]
fn breakdown_is_consistent() {
    let idx = small_index();
    let q = idx.dataset.queries[0].clone();
    let out = idx.search(&q, 5, 10);
    assert!(out.gnn_time <= out.total_time);
    assert!(out.distance_time <= out.total_time);
    assert!(
        out.gnn_time.as_nanos() > 0,
        "LAN query must spend time in the GNN"
    );
}
