//! Umbrella crate re-exporting the LAN workspace members.
//!
//! Most users should depend on [`lan_core`] directly; this crate exists to
//! host the runnable examples in `examples/` and the cross-crate integration
//! tests in `tests/`.

pub use lan_core as core;
pub use lan_datasets as datasets;
pub use lan_ged as ged;
pub use lan_gnn as gnn;
pub use lan_graph as graph;
pub use lan_models as models;
pub use lan_obs as obs;
pub use lan_pg as pg;
pub use lan_tensor as tensor;
