//! Ablation: how much of LAN's win comes from each component?
//!
//! Compares, on one dataset and one beam size:
//!   1. full LAN (learned init + learned pruning + CG),
//!   2. learned pruning without CG,
//!   3. learned init with exhaustive routing,
//!   4. plain HNSW (no learning),
//!   5. np_route with the *oracle* ranker (the Theorem 1 upper bound on
//!      what learned pruning could ever achieve).
//!
//! ```text
//! cargo run --release --example ablation_pruning
//! ```

use lan_core::{harness, InitStrategy, LanConfig, LanIndex, RouteStrategy};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::np_route::{np_route, OracleRanker};
use lan_pg::{DistCache, PgConfig};

fn main() {
    let dataset = Dataset::generate(DatasetSpec::aids().with_graphs(200).with_queries(30));
    let cfg = LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 3,
            nh_cover_k: 30,
            clusters: 6,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::from_env(),
    };
    println!("building index...");
    let index = LanIndex::build(dataset, cfg);
    let test_q = index.dataset.split.test.clone();
    let k = 10;
    let b = 20;
    let truths = harness::ground_truths(&index, &test_q, k);

    println!(
        "\nAblation on {} ({} test queries, k = {k}, b = {b}):",
        index.dataset.spec.name,
        test_q.len()
    );
    println!(
        "{:<34} {:>8} {:>9} {:>8}",
        "variant", "recall", "avg NDC", "QPS"
    );
    for (label, init, route) in [
        (
            "LAN (full)",
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: true },
        ),
        (
            "LAN w/o CG",
            InitStrategy::LanIs,
            RouteStrategy::LanRoute { use_cg: false },
        ),
        (
            "LAN_IS + exhaustive routing",
            InitStrategy::LanIs,
            RouteStrategy::HnswRoute,
        ),
        (
            "HNSW (no learning)",
            InitStrategy::HnswIs,
            RouteStrategy::HnswRoute,
        ),
    ] {
        let (p, _) = harness::run_point(&index, &test_q, &truths, k, b, init, route);
        println!(
            "{label:<34} {:>8.3} {:>9.1} {:>8.2}",
            p.recall, p.avg_ndc, p.qps
        );
    }

    // Oracle pruning: the idealized Theorem 1 router.
    let mut recall_sum = 0.0;
    let mut ndc_sum = 0usize;
    let t0 = std::time::Instant::now();
    for (i, &qi) in test_q.iter().enumerate() {
        let q = index.dataset.queries[qi].clone();
        let qd = |id: u32| index.dataset.distance(&q, id);
        let cache = DistCache::new(&qd);
        let entry = index.pg.hnsw_entry(&cache);
        let oracle = OracleRanker::new(&qd, index.cfg.model.batch_pct);
        let r = np_route(index.pg.base(), &cache, &oracle, &[entry], b, k, 1.0);
        recall_sum += lan_datasets::recall_at_k_ties(&r.results, truths[i], k);
        ndc_sum += r.ndc;
    }
    let n = test_q.len() as f64;
    println!(
        "{:<34} {:>8.3} {:>9.1} {:>8.2}   <- idealized bound",
        "oracle pruning (Theorem 1)",
        recall_sum / n,
        ndc_sum as f64 / n,
        n / t0.elapsed().as_secs_f64()
    );
}
