//! Molecule similarity search — the cheminformatics scenario from the
//! paper's introduction: find the compounds most structurally similar to a
//! query molecule (similar structure ⇒ similar function).
//!
//! Builds an AIDS-like compound database, searches with LAN, and compares
//! the work against both the exhaustive-routing baseline and a full
//! database scan.
//!
//! ```text
//! cargo run --release --example chem_search
//! ```

use lan_core::{LanConfig, LanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::{perturb::perturb, Graph};
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An AIDS-like compound database: 51 atom types, ~25 atoms per
    // molecule, valence-capped chain/ring structures.
    let dataset = Dataset::generate(DatasetSpec::aids().with_graphs(200).with_queries(20));
    println!(
        "compound database: {} molecules, avg {:.1} atoms / {:.1} bonds",
        dataset.graphs.len(),
        dataset.avg_nodes(),
        dataset.avg_edges()
    );

    let cfg = LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 3,
            nh_cover_k: 30,
            clusters: 6,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::from_env(),
    };
    println!("indexing (this cost is offline and amortized over all queries)...");
    let index = LanIndex::build(dataset, cfg);

    // The "chemist's query": a lightly modified variant of a known compound
    // — e.g. a candidate molecule differing by a few atoms/bonds.
    let mut rng = StdRng::seed_from_u64(7);
    let base: &Graph = &index.dataset.graphs[42];
    let (candidate, edits) = perturb(&mut rng, base, 3, index.dataset.spec.num_labels);
    println!(
        "\nquery molecule: {} atoms, {} bonds ({} edits away from compound #42)",
        candidate.node_count(),
        candidate.edge_count(),
        edits
    );

    let k = 5;
    let out = index.search(&candidate, k, 16);
    println!("\nLAN: {k} most similar compounds (GED, id):");
    for &(d, id) in &out.results {
        let g = &index.dataset.graphs[id as usize];
        println!(
            "  compound #{id:<4} GED = {d:<4} ({} atoms, {} bonds)",
            g.node_count(),
            g.edge_count()
        );
    }
    println!(
        "\ncost: {} GED computations vs {} for a linear scan ({}x fewer)",
        out.ndc,
        index.dataset.graphs.len(),
        index.dataset.graphs.len() / out.ndc.max(1)
    );

    // Sanity: compound #42 (or a 0-distance duplicate) should surface.
    let hit = out
        .results
        .iter()
        .any(|&(d, id)| id == 42 || d <= edits as f64);
    println!("query's source compound found or matched: {hit}");

    // Compare against the exhaustive-routing baseline (same index).
    let hnsw = index.search_hnsw(&candidate, k, 16);
    println!(
        "baseline (exhaustive routing): same top distance = {}, NDC = {} ({:+.0}% vs LAN)",
        hnsw.results[0].0,
        hnsw.ndc,
        100.0 * (hnsw.ndc as f64 - out.ndc as f64) / out.ndc.max(1) as f64
    );
}
