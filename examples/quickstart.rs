//! Quickstart: build a LAN index over a small synthetic graph database and
//! answer a k-ANN query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lan_core::{LanConfig, LanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_models::ModelConfig;
use lan_pg::PgConfig;

fn main() {
    // 1. A graph database. DatasetSpec presets mirror the paper's datasets;
    //    here: a 150-graph SYN-like database with 20 queries.
    let dataset = Dataset::generate(DatasetSpec::syn().with_graphs(150).with_queries(20));
    println!(
        "database: {} graphs (avg |V| = {:.1}, avg |E| = {:.1}), {} queries",
        dataset.graphs.len(),
        dataset.avg_nodes(),
        dataset.avg_edges(),
        dataset.queries.len()
    );

    // 2. Build the index: proximity graph + trained models + compressed
    //    GNN-graphs. All offline.
    let cfg = LanConfig {
        pg: PgConfig::new(5),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 3,
            nh_cover_k: 20,
            clusters: 5,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::from_env(),
    };
    println!("building index (PG construction + model training)...");
    let t0 = std::time::Instant::now();
    let index = LanIndex::build(dataset, cfg);
    println!(
        "index built in {:.1}s — gamma* = {}, M_nh precision = {:.2}",
        t0.elapsed().as_secs_f64(),
        index.report.gamma_star,
        index.report.nh_precision
    );

    // 3. Query: the 10 approximate nearest neighbors of a test query.
    let qi = index.dataset.split.test[0];
    let query = index.dataset.queries[qi].clone();
    let out = index.search(&query, 10, 20);
    println!("\nLAN top-10 (distance, graph id): {:?}", out.results);
    println!(
        "NDC = {} (vs {} for a full scan); query time {:.1} ms ({:.0}% GED, {:.0}% GNN)",
        out.ndc,
        index.dataset.graphs.len(),
        out.total_time.as_secs_f64() * 1000.0,
        100.0 * out.distance_time.as_secs_f64() / out.total_time.as_secs_f64(),
        100.0 * out.gnn_time.as_secs_f64() / out.total_time.as_secs_f64(),
    );

    // 4. Check against the exact answer.
    let truth = index.dataset.ground_truth_knn(&query, 10);
    let kth = truth.last().unwrap().0;
    let recall = lan_datasets::recall_at_k_ties(&out.results, kth, 10);
    println!("tie-aware recall@10 = {recall:.2}");
}
