//! Code-clone (plagiarism) detection over control-flow graphs — the
//! software-engineering scenario from the paper's introduction: the
//! control flow of a code fragment is a graph, and near-duplicates of a
//! suspicious fragment are its k-ANNs under graph edit distance.
//!
//! ```text
//! cargo run --release --example code_clone_search
//! ```

use lan_core::{LanConfig, LanIndex};
use lan_datasets::{Dataset, DatasetSpec};
use lan_graph::perturb::perturb;
use lan_models::ModelConfig;
use lan_pg::PgConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A LINUX-like database of control-flow graphs (36 block labels,
    // ~35 blocks per function).
    let dataset = Dataset::generate(DatasetSpec::linux().with_graphs(200).with_queries(20));
    println!(
        "CFG database: {} functions, avg {:.1} blocks / {:.1} edges",
        dataset.graphs.len(),
        dataset.avg_nodes(),
        dataset.avg_edges()
    );

    let cfg = LanConfig {
        pg: PgConfig::new(6),
        model: ModelConfig {
            embed_dim: 16,
            epochs: 3,
            nh_cover_k: 30,
            clusters: 6,
            ..ModelConfig::default()
        },
        ds: 1.0,
        quant: lan_core::QuantConfig::from_env(),
    };
    println!("indexing the corpus...");
    let index = LanIndex::build(dataset, cfg);

    // A "plagiarized" function: a known function with cosmetic edits
    // (renamed ops, an inserted block, a removed jump).
    let mut rng = StdRng::seed_from_u64(99);
    let original = 17u32;
    let (suspicious, edits) = perturb(
        &mut rng,
        &index.dataset.graphs[original as usize],
        3,
        index.dataset.spec.num_labels,
    );
    println!(
        "\nsuspicious function: {} blocks ({} edits from function #{original})",
        suspicious.node_count(),
        edits
    );

    let out = index.search(&suspicious, 5, 16);
    println!("\ntop-5 most similar functions in the corpus:");
    // The operational metric is an approximate (upper-bound) GED, so a
    // deployed detector calibrates its threshold on corpus statistics; a
    // dozen edits on ~35-block functions is a near-clone.
    let threshold = 12.0;
    for &(d, id) in &out.results {
        let verdict = if d <= threshold {
            "LIKELY CLONE"
        } else {
            "distinct"
        };
        println!("  function #{id:<4} GED = {d:<5} -> {verdict}");
    }
    println!(
        "\ndetection cost: {} GED computations over a {}-function corpus",
        out.ndc,
        index.dataset.graphs.len()
    );

    // The edit-perturbed source must be within `edits` of something in its
    // own perturbation family, so the top hit should sit under the
    // threshold.
    assert!(
        out.results[0].0 <= threshold,
        "expected a near-clone at the top of the result list"
    );
    println!("verdict: clone of function #{} detected", out.results[0].1);
}
