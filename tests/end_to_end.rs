//! Cross-crate integration: the full LAN pipeline through the public API of
//! the umbrella crate.

use lan_suite::core::{InitStrategy, L2RouteIndex, LanConfig, LanIndex, RouteStrategy};
use lan_suite::datasets::{Dataset, DatasetSpec};
use lan_suite::ged::GedMethod;
use lan_suite::models::ModelConfig;
use lan_suite::pg::PgConfig;

fn build() -> LanIndex {
    let dataset = Dataset::generate(
        DatasetSpec::syn()
            .with_graphs(70)
            .with_queries(15)
            .with_metric(GedMethod::Hungarian),
    );
    LanIndex::build(
        dataset,
        LanConfig {
            pg: PgConfig::new(4),
            model: ModelConfig {
                embed_dim: 8,
                epochs: 2,
                max_samples_per_epoch: 150,
                nh_cover_k: 10,
                clusters: 3,
                top_clusters: 2,
                mlp_hidden: 8,
                ..ModelConfig::default()
            },
            ds: 1.0,
            quant: lan_core::QuantConfig::default(),
        },
    )
}

#[test]
fn full_pipeline_produces_quality_results() {
    let index = build();
    let mut recall_sum = 0.0;
    let k = 5;
    let qs = &index.dataset.split.test;
    for &qi in qs {
        let q = index.dataset.queries[qi].clone();
        let out = index.search(&q, k, 12);
        assert_eq!(out.results.len(), k);
        let truth = index.dataset.ground_truth_knn(&q, k);
        let kth = truth.last().unwrap().0;
        recall_sum += lan_suite::datasets::recall_at_k_ties(&out.results, kth, k);
        // NDC must beat a full scan.
        assert!(out.ndc < index.dataset.graphs.len());
    }
    let recall = recall_sum / qs.len() as f64;
    assert!(recall >= 0.6, "end-to-end recall too low: {recall}");
}

#[test]
fn queries_from_outside_the_workload_work() {
    // A caller's own graph (not from the generated workload).
    let index = build();
    let g = lan_suite::graph::Graph::from_edges(
        vec![0, 1, 2, 0, 1],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
    )
    .unwrap();
    let out = index.search(&g, 3, 8);
    assert_eq!(out.results.len(), 3);
    assert!(out.results[0].0 >= 0.0);
}

#[test]
fn l2route_and_strategies_compose() {
    let index = build();
    let l2 = L2RouteIndex::build(&index, 4);
    let q = index.dataset.queries[0].clone();
    let (res, ndc, _, _) = l2.search(&index, &q, 3, 12);
    assert_eq!(res.len(), 3);
    assert_eq!(ndc, 12);

    for init in [
        InitStrategy::LanIs,
        InitStrategy::HnswIs,
        InitStrategy::RandIs,
    ] {
        let out = index.search_with(&q, 3, 8, init, RouteStrategy::LanRoute { use_cg: true }, 1);
        assert_eq!(out.results.len(), 3);
    }
}

#[test]
fn deterministic_given_seed() {
    let i1 = build();
    let i2 = build();
    let q = i1.dataset.queries[2].clone();
    let a = i1.search_with(
        &q,
        4,
        10,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        9,
    );
    let b = i2.search_with(
        &q,
        4,
        10,
        InitStrategy::LanIs,
        RouteStrategy::LanRoute { use_cg: true },
        9,
    );
    assert_eq!(a.results, b.results);
    assert_eq!(a.ndc, b.ndc);
}
