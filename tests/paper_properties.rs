//! The paper's formal claims as randomized property tests, exercised
//! through the public API (proptest drives the instance generation).

use lan_suite::ged::engine::{ged, GedMethod};
use lan_suite::ged::exact::{brute_force_ged, exact_ged, ExactLimits};
use lan_suite::ged::lower_bounds::label_size_lb;
use lan_suite::gnn::gin::GnnConfig;
use lan_suite::gnn::{CompressedGnnGraph, CrossGraphNet, CrossInput};
use lan_suite::graph::{Graph, GraphBuilder};
use lan_suite::pg::np_route::{np_route, OracleRanker};
use lan_suite::pg::{beam_search, DistCache};
use lan_suite::tensor::{ParamStore, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small random labeled simple graph.
fn small_graph(max_n: usize, labels: u16) -> impl Strategy<Value = Graph> {
    (
        1..=max_n,
        proptest::collection::vec(0u16..labels, max_n),
        any::<u64>(),
    )
        .prop_map(move |(n, ls, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_node(ls[i % ls.len()]);
            }
            // Random tree + extra edges for connectivity variety.
            for i in 1..n {
                let j = rng.gen_range(0..i);
                b.add_edge(i as u32, j as u32).unwrap();
            }
            for _ in 0..n {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u != v && !b.has_edge(u, v) {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact A* equals exhaustive brute force on tiny instances.
    #[test]
    fn exact_ged_matches_brute_force(
        g1 in small_graph(4, 3),
        g2 in small_graph(4, 3),
    ) {
        let a = exact_ged(&g1, &g2, &ExactLimits::default()).distance().unwrap();
        let b = brute_force_ged(&g1, &g2);
        prop_assert_eq!(a, b);
    }

    /// Lower bound <= exact <= every approximation (the ordering every GED
    /// consumer in the system relies on).
    #[test]
    fn ged_sandwich(
        g1 in small_graph(5, 3),
        g2 in small_graph(5, 3),
    ) {
        let exact = exact_ged(&g1, &g2, &ExactLimits::default()).distance().unwrap();
        prop_assert!(label_size_lb(&g1, &g2) <= exact + 1e-9);
        for m in [
            GedMethod::Hungarian,
            GedMethod::Vj,
            GedMethod::Beam { width: 4 },
            GedMethod::BestOfThree { beam_width: 4 },
        ] {
            let approx = ged(&g1, &g2, &m).unwrap();
            prop_assert!(approx + 1e-9 >= exact, "{:?} below exact", m);
        }
    }

    /// Theorem 2: compressed and plain cross-graph embeddings coincide.
    #[test]
    fn cg_equivalence(
        g in small_graph(8, 2),
        q in small_graph(8, 2),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GnnConfig::uniform(2, 6, 2);
        let mut store = ParamStore::new();
        let net = CrossGraphNet::new(&mut rng, &mut store, cfg.clone());
        let mut t1 = Tape::new();
        let plain = net.forward(
            &mut t1,
            &store,
            &CrossInput::plain(&g, &cfg),
            &CrossInput::plain(&q, &cfg),
        );
        let mut t2 = Tape::new();
        let comp = net.forward(
            &mut t2,
            &store,
            &CrossInput::compressed(&CompressedGnnGraph::build(&g, 2), &cfg),
            &CrossInput::compressed(&CompressedGnnGraph::build(&q, 2), &cfg),
        );
        let d = t1.value(plain.h_pair).max_abs_diff(t2.value(comp.h_pair));
        prop_assert!(d < 1e-4, "CG differs from plain by {}", d);
        // Corollary 1: no more work.
        prop_assert!(t2.flops() <= t1.flops());
    }

    /// Theorem 1 over a *real graph database* metric (not just synthetic
    /// distances): oracle-pruned routing returns the baseline's results
    /// with NDC no larger, under distinct distances.
    #[test]
    fn np_route_theorem1_on_graph_metric(seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        // A tiny database with all-distinct distances from the query:
        // perturb distances by unique epsilons to reach general position
        // while preserving the graph-metric structure.
        let n = 24usize;
        let graphs: Vec<Graph> = (0..n)
            .map(|_| lan_suite::graph::generators::molecule_like(&mut rng, 8, 1, 4, 4))
            .collect();
        let q = lan_suite::graph::generators::molecule_like(&mut rng, 8, 1, 4, 4);
        let base: Vec<f64> = graphs
            .iter()
            .map(|g| ged(&q, g, &GedMethod::Hungarian).unwrap())
            .collect();
        let dists: Vec<f64> =
            base.iter().enumerate().map(|(i, d)| d + i as f64 * 1e-6).collect();
        // Random connected PG.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            let j = rng.gen_range(0..i);
            adj[i].push(j as u32);
            adj[j].push(i as u32);
        }
        for _ in 0..n {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !adj[a].contains(&(b as u32)) {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
        let entry = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(2..6);
        let k = 2;

        let f = |id: u32| dists[id as usize];
        let c1 = DistCache::new(&f);
        let bs = beam_search(&adj, &c1, &[entry], b, k);
        let c2 = DistCache::new(&f);
        let oracle = OracleRanker::new(&f, 20);
        let np = np_route(&adj, &c2, &oracle, &[entry], b, k, 1.0);
        prop_assert_eq!(bs.results, np.results);
        prop_assert!(np.ndc <= bs.ndc);
    }

    /// Isomorphism invariance of the whole distance stack.
    #[test]
    fn ged_isomorphism_invariance(g in small_graph(6, 3), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..g.node_count() as u32).collect();
        perm.shuffle(&mut rng);
        let p = g.permute(&perm);
        let d = exact_ged(&g, &p, &ExactLimits::default()).distance().unwrap();
        prop_assert_eq!(d, 0.0);
    }
}
